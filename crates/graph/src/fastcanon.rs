//! Word-parallel canonicalisation kernel for balls of at most 64 nodes.
//!
//! Every ball the paper's sweeps canonicalise is tiny — a radius-3 ball in
//! a grid has 25 nodes, in a cycle 7 — so the canonical-code hot path in
//! [`crate::canon`] spends its time not on asymptotics but on memory
//! traffic: `Vec<Vec<NodeId>>` adjacency chasing, per-branch partition
//! clones, and per-node AHU code vectors.  This module is a drop-in kernel
//! for the **≤ 64 node regime** that runs the *same algorithms* over flat
//! word-parallel state:
//!
//! * adjacency is 64 [`u64` bitset rows](CanonScratch), so neighbour
//!   iteration is bit scanning, ball membership is a mask test, and the
//!   interchangeability prune compares whole neighbourhoods with two word
//!   ops instead of walking sorted lists;
//! * refinement partitions, permutations and BFS queues are fixed arrays —
//!   an individualisation branch copies 256 bytes instead of cloning a
//!   `Vec`;
//! * AHU subtree codes are replaced by order-isomorphic integer ranks
//!   (the oracle's length-prefixed codes are prefix-free, so rank
//!   comparison reproduces code comparison exactly — see
//!   `rooted_tree_perm`), replacing the per-node `Vec<Vec<u64>>` of the
//!   general path with one flat child arena and a 64-entry rank array;
//! * all of the above lives in one reusable [`CanonScratch`] (one per
//!   worker thread, or one per call site via
//!   [`CanonScratch::canonicalize_batch`]), so a warmed-up scratch performs
//!   **zero allocations per call** beyond the returned code itself.
//!
//! # Byte-identical to the oracle
//!
//! The kernel is *not* a second canonical form: it mirrors the exact
//! orderings of [`crate::canon`] — the `(centre, colour)` initial
//! partition, the signature ranks of colour refinement, the
//! first-smallest-cell branching rule, the AHU child order, and the
//! `[n, m, centre | colours | sorted edges]` encode layout — so for every
//! input it produces **the same bytes** as the slow path.  The two places
//! the implementations may order intermediate values differently (unstable
//! sorts over refinement signatures, tie-breaks between equal AHU child
//! codes) provably cannot change the emitted code: refinement ranks depend
//! only on signature equivalence classes, and equal AHU codes mean
//! isomorphic coloured subtrees whose encode contributions are identical.
//! Bit-scanning a row visits neighbours in ascending node order, matching
//! the sorted adjacency lists the oracle iterates.
//!
//! The original path stays intact as the **differential oracle**
//! ([`crate::canon::canonical_code_oracle`],
//! [`crate::canon::centered_canonical_code_oracle`]);
//! `tests/tests/fastcanon_differential.rs` proptests random trees, grids,
//! cycles, GMR balls and colourings through both and asserts code-for-code
//! equality.  Setting `LD_CANON_FALLBACK=1` in the environment forces every
//! dispatch onto the oracle path (read once per process), which CI uses to
//! byte-diff whole sweep reports against kernel-enabled runs.

use crate::canon::{self, CanonicalCode};
use crate::graph::{Graph, NodeId};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Largest graph the bitset kernel accepts: one node per bit of a `u64`
/// adjacency row.  Larger graphs dispatch to the oracle path.
pub const MAX_NODES: usize = 64;

/// Parent sentinel in the tree path (valid nodes are `0..64`).
const NO_PARENT: u8 = u8::MAX;

/// Whether the kernel can canonicalise this graph at all: `1..=64` nodes.
/// (The empty graph is handled by the shared header fast path in
/// [`crate::canon`] before any kernel dispatch.)
pub fn supports(graph: &Graph) -> bool {
    (1..=MAX_NODES).contains(&graph.node_count())
}

/// Whether `LD_CANON_FALLBACK` forces the oracle path for this process.
///
/// Any non-empty value other than `"0"` disables the kernel.  The
/// environment is read once and cached: sweep determinism must not depend
/// on mid-run environment mutation.
pub fn fallback_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| parse_fallback(std::env::var("LD_CANON_FALLBACK").ok().as_deref()))
}

/// Pure parse behind [`fallback_forced`]: unset, empty and `"0"` keep the
/// kernel on; everything else forces the oracle.
fn parse_fallback(value: Option<&str>) -> bool {
    value.is_some_and(|v| !v.is_empty() && v != "0")
}

/// Whether a [`crate::canon::canonical_code`] call on this graph will run
/// on the bitset kernel: small enough *and* the fallback is not forced.
pub fn accelerates(graph: &Graph) -> bool {
    supports(graph) && !fallback_forced()
}

thread_local! {
    /// One warmed-up scratch per worker thread for the non-batched entry
    /// points ([`crate::canon::canonical_code`] and friends).
    static SCRATCH: RefCell<CanonScratch> = RefCell::new(CanonScratch::new());
}

/// Canonical form via this thread's shared scratch (the dispatch target of
/// [`crate::canon::canonical_code`]).  Reentrant calls — impossible today,
/// but cheap to tolerate — fall back to a fresh scratch.
pub(crate) fn thread_form(graph: &Graph, center: Option<NodeId>, colors: &[u64]) -> CanonicalCode {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => scratch.form(graph, center, colors),
        Err(_) => CanonScratch::new().form(graph, center, colors),
    })
}

/// How many times this thread's shared scratch has run the bitset kernel
/// (oracle fallbacks do not count).  Thread-local, so concurrently running
/// tests cannot perturb each other's dispatch assertions.
pub fn thread_kernel_calls() -> u64 {
    SCRATCH.with(|cell| cell.try_borrow().map_or(0, |s| s.kernel_calls()))
}

/// Reusable scratch state for the bitset kernel: adjacency rows, BFS and
/// refinement arrays, the AHU child arena, and the output buffers.
///
/// Create one per worker (or lean on the crate's per-thread instance via
/// [`crate::canon::canonical_code`]) and feed it many graphs; after the
/// first few calls every buffer has reached its high-water mark and calls
/// allocate nothing but the returned [`CanonicalCode`].
pub struct CanonScratch {
    // -- loaded per graph by `prepare` -------------------------------------
    /// Bit `u` of `rows[v]` set iff `{v, u}` is an edge.
    rows: [u64; MAX_NODES],
    /// Node count of the loaded graph.
    n: usize,
    /// Edge count of the loaded graph.
    m: usize,
    /// Whether the loaded graph is a tree (dispatches AHU vs search).
    tree: bool,
    /// Bitset-kernel invocations (dispatch introspection for tests).
    calls: u64,
    // -- tree path ---------------------------------------------------------
    /// BFS parent of each node under the current rooting.
    parent: [u8; MAX_NODES],
    /// BFS visit order under the current rooting.
    bfs: [u8; MAX_NODES],
    /// Start of each node's ordered-children run in `child_arena`.
    child_start: [u8; MAX_NODES],
    /// Number of children of each node.
    child_len: [u8; MAX_NODES],
    /// Ordered children of every node, packed back-to-back.
    child_arena: Vec<u8>,
    /// Preorder walk stack.
    stack: Vec<u8>,
    /// Leaf-stripping frontier for tree-centre computation.
    layer: Vec<u8>,
    /// Next leaf-stripping frontier.
    next_layer: Vec<u8>,
    /// The canonical permutation produced by the current rooting.
    perm: [u32; MAX_NODES],
    // -- search path -------------------------------------------------------
    /// Flat refinement-signature buffer (neighbour cell ids, sorted).
    sig_data: Vec<u32>,
    /// Node order under the current signature sort.
    order: [u8; MAX_NODES],
    // -- output ------------------------------------------------------------
    /// Best (lexicographically least) code found so far.
    best: Vec<u64>,
    /// Whether `best` holds a candidate yet.
    best_set: bool,
    /// Encode buffer for the candidate under evaluation.
    candidate: Vec<u64>,
    /// Batch output storage for [`CanonScratch::canonicalize_batch`].
    batch: Vec<CanonicalCode>,
}

impl Default for CanonScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl CanonScratch {
    /// A fresh scratch.  Buffers grow to their steady-state sizes over the
    /// first few calls and are reused forever after.
    pub fn new() -> Self {
        CanonScratch {
            rows: [0; MAX_NODES],
            n: 0,
            m: 0,
            tree: false,
            calls: 0,
            parent: [NO_PARENT; MAX_NODES],
            bfs: [0; MAX_NODES],
            child_start: [0; MAX_NODES],
            child_len: [0; MAX_NODES],
            child_arena: Vec::new(),
            stack: Vec::new(),
            layer: Vec::new(),
            next_layer: Vec::new(),
            perm: [0; MAX_NODES],
            sig_data: Vec::new(),
            order: [0; MAX_NODES],
            best: Vec::new(),
            best_set: false,
            candidate: Vec::new(),
            batch: Vec::new(),
        }
    }

    /// How many times this scratch has run the bitset kernel.  Calls that
    /// dispatched to the oracle (graph too large, or `LD_CANON_FALLBACK`
    /// set) do not count — the 63/64/65-node seam tests pin routing with
    /// this counter.
    pub fn kernel_calls(&self) -> u64 {
        self.calls
    }

    /// Canonical code of a coloured graph — byte-identical to
    /// [`crate::canon::canonical_code`], served from this scratch.
    ///
    /// # Panics
    ///
    /// Panics if `colors.len() != graph.node_count()`.
    pub fn code(&mut self, graph: &Graph, colors: &[u64]) -> CanonicalCode {
        self.form(graph, None, colors)
    }

    /// Centred canonical code — byte-identical to
    /// [`crate::canon::centered_canonical_code`], served from this scratch.
    ///
    /// # Panics
    ///
    /// Panics if `center` is out of range or `colors.len() !=
    /// graph.node_count()`.
    pub fn centered_code(
        &mut self,
        graph: &Graph,
        center: NodeId,
        colors: &[u64],
    ) -> CanonicalCode {
        self.form(graph, Some(center), colors)
    }

    /// Canonicalises many centres of one coloured graph, amortising the
    /// adjacency-row load and tree check across the whole batch.  Entry `i`
    /// of the returned slice is the centred code of `centers[i]`,
    /// byte-identical to [`crate::canon::centered_canonical_code`]; the
    /// slice borrows scratch storage and is valid until the next call.
    ///
    /// # Panics
    ///
    /// Panics if any centre is out of range or `colors.len() !=
    /// graph.node_count()`.
    pub fn canonicalize_batch(
        &mut self,
        graph: &Graph,
        colors: &[u64],
        centers: &[NodeId],
    ) -> &[CanonicalCode] {
        let n = graph.node_count();
        assert_eq!(n, colors.len(), "one colour per node is required");
        self.batch.clear();
        if supports(graph) && !fallback_forced() {
            self.prepare(graph);
            for &c in centers {
                assert!(c.index() < n, "center must be a node of the graph");
                let code = self.form_prepared(Some(c), colors);
                self.batch.push(code);
            }
        } else {
            for &c in centers {
                self.batch.push(canon::oracle_form(graph, Some(c), colors));
            }
        }
        &self.batch
    }

    /// Full dispatch: run the kernel when the graph is in the ≤ 64 regime
    /// and the fallback is not forced, otherwise delegate to the oracle.
    pub(crate) fn form(
        &mut self,
        graph: &Graph,
        center: Option<NodeId>,
        colors: &[u64],
    ) -> CanonicalCode {
        let n = graph.node_count();
        assert_eq!(n, colors.len(), "one colour per node is required");
        if let Some(c) = center {
            assert!(c.index() < n, "center must be a node of the graph");
        }
        if !supports(graph) || fallback_forced() {
            return canon::oracle_form(graph, center, colors);
        }
        self.prepare(graph);
        self.form_prepared(center, colors)
    }

    /// Loads a supported graph into the bitset rows and caches its edge
    /// count and tree-ness (shared by every centre of a batch).
    fn prepare(&mut self, graph: &Graph) {
        let n = graph.node_count();
        debug_assert!(supports(graph), "caller checked the ≤64-node regime");
        self.n = n;
        self.m = graph.edge_count();
        self.rows[..n].fill(0);
        for v in graph.nodes() {
            let mut row = 0u64;
            for u in graph.neighbors(v) {
                row |= 1 << u.index();
            }
            self.rows[v.index()] = row;
        }
        // Tree check without the traversal allocations of
        // `Graph::is_tree`: a non-empty graph (guaranteed by `supports`)
        // is a tree iff it has exactly n − 1 edges and the bitset BFS
        // closure from node 0 reaches every node.
        self.tree = self.m + 1 == n && {
            let full = if n == MAX_NODES { !0 } else { (1u64 << n) - 1 };
            let mut seen = 1u64;
            let mut frontier = 1u64;
            while frontier != 0 {
                let mut next = 0u64;
                let mut w = frontier;
                while w != 0 {
                    let v = w.trailing_zeros() as usize;
                    w &= w - 1;
                    next |= self.rows[v];
                }
                frontier = next & !seen;
                seen |= next;
            }
            seen == full
        };
    }

    /// Runs the kernel on the loaded graph (dispatch already resolved).
    fn form_prepared(&mut self, center: Option<NodeId>, colors: &[u64]) -> CanonicalCode {
        self.calls += 1;
        self.best_set = false;
        let center = center.map(|c| c.index() as u32);
        if self.tree {
            self.tree_code(center, colors);
        } else {
            self.search_code(center, colors);
        }
        debug_assert!(self.best_set, "every kernel run emits at least one leaf");
        CanonicalCode::from_words(self.best.clone())
    }

    /// Keeps the lexicographically least encode seen this run: swaps
    /// `candidate` into `best` when it improves (mirrors the oracle's
    /// `best <= code` test without allocating).
    fn commit_candidate(&mut self) {
        if !self.best_set || self.candidate < self.best {
            std::mem::swap(&mut self.best, &mut self.candidate);
            self.best_set = true;
        }
    }

    // -- tree path (rank-based AHU) ----------------------------------------

    /// Mirror of the oracle's `tree_code`: root at the centre (or at the 1–2
    /// graph centres), canonise each rooting, keep the least encode.
    fn tree_code(&mut self, center: Option<u32>, colors: &[u64]) {
        let mut roots = [0u8; 2];
        let root_count = match center {
            Some(c) => {
                roots[0] = c as u8;
                1
            }
            None => self.tree_centers(&mut roots),
        };
        for &root in roots.iter().take(root_count) {
            self.rooted_tree_perm(root, colors);
            encode_into(
                &mut self.candidate,
                &self.rows,
                self.n,
                self.m,
                center,
                colors,
                &self.perm,
            );
            self.commit_candidate();
        }
    }

    /// The 1 or 2 tree centres by leaf stripping (popcount degrees, bitset
    /// frontiers).  Fills `roots` and returns how many there are.
    fn tree_centers(&mut self, roots: &mut [u8; 2]) -> usize {
        let n = self.n;
        if n == 1 {
            roots[0] = 0;
            return 1;
        }
        // Reuse `perm` as the degree array to avoid a dedicated buffer.
        let mut degree = [0u8; MAX_NODES];
        self.layer.clear();
        for (v, d) in degree.iter_mut().enumerate().take(n) {
            *d = self.rows[v].count_ones() as u8;
            if *d <= 1 {
                self.layer.push(v as u8);
            }
        }
        let mut remaining = n;
        while remaining > 2 {
            remaining -= self.layer.len();
            self.next_layer.clear();
            for i in 0..self.layer.len() {
                let leaf = self.layer[i] as usize;
                degree[leaf] = 0;
                let mut w = self.rows[leaf];
                while w != 0 {
                    let u = w.trailing_zeros() as usize;
                    w &= w - 1;
                    if degree[u] > 0 {
                        degree[u] -= 1;
                        if degree[u] == 1 {
                            self.next_layer.push(u as u8);
                        }
                    }
                }
            }
            std::mem::swap(&mut self.layer, &mut self.next_layer);
        }
        roots[0] = self.layer[0];
        let count = self.layer.len().min(2);
        if count == 2 {
            roots[1] = self.layer[1];
        }
        count
    }

    /// Mirror of the oracle's `rooted_tree_perm` — BFS rooting, AHU
    /// canonisation, preorder positions in child code order — but with the
    /// oracle's packed subtree codes replaced by **order-isomorphic integer
    /// ranks**, which removes the O(n·depth) arena copying entirely.
    ///
    /// Why ranks reproduce the oracle's order exactly: the oracle's subtree
    /// code is `[len, colour, child codes in sorted order]` with
    /// `len = 2·subtree_size`, so codes are *prefix-free* (a code's first
    /// word determines its total length, hence one code can only prefix an
    /// identical one).  For prefix-free components, lexicographic comparison
    /// of concatenations equals lexicographic comparison of the component
    /// tuples.  Comparing two codes therefore resolves as: subtree size
    /// first (the leading `len` word), then colour, then the child codes
    /// pairwise.  Processing size classes in ascending order and assigning
    /// each distinct `(colour, sorted child ranks)` signature the next rank
    /// — children, being strictly smaller, are already ranked — yields
    /// `rank(a) < rank(b) ⟺ code(a) < code(b)` by induction, and equal
    /// signatures share a rank so equal subtrees stay interchangeable.
    /// (Slice-exhaustion ties between distinct parents cannot occur: a
    /// strict prefix of equal child ranks would force the remaining
    /// children to have subtree size 0.)
    ///
    /// Tie order between equal-rank children is free — equal ranks mean
    /// isomorphic coloured subtrees, whose encode contributions are
    /// identical — so every sort may be unstable.
    fn rooted_tree_perm(&mut self, root: u8, colors: &[u64]) {
        let n = self.n;
        let CanonScratch {
            rows,
            parent,
            bfs,
            child_start,
            child_len,
            child_arena,
            stack,
            perm,
            ..
        } = self;

        // BFS rooting: bit scanning visits neighbours in ascending node
        // order, exactly as the oracle's sorted adjacency lists do.
        parent[..n].fill(NO_PARENT);
        let mut seen: u64 = 1 << root;
        bfs[0] = root;
        let mut len = 1usize;
        let mut head = 0usize;
        while head < len {
            let u = bfs[head];
            head += 1;
            let mut w = rows[u as usize] & !seen;
            while w != 0 {
                let v = w.trailing_zeros() as u8;
                w &= w - 1;
                seen |= 1 << v;
                parent[v as usize] = u;
                bfs[len] = v;
                len += 1;
            }
        }
        debug_assert_eq!(len, n, "tree is connected");

        // Subtree sizes, bottom-up over the BFS order.
        let mut size = [1u8; MAX_NODES];
        for i in (1..len).rev() {
            let v = bfs[i] as usize;
            size[parent[v] as usize] += size[v];
        }

        // Children of every node, packed back-to-back (ascending by id for
        // now; each run is re-sorted by rank once its children are ranked).
        child_arena.clear();
        for v in 0..n {
            child_start[v] = child_arena.len() as u8;
            let mut count = 0u8;
            let mut w = rows[v];
            while w != 0 {
                let u = w.trailing_zeros() as u8;
                w &= w - 1;
                if parent[u as usize] == v as u8 {
                    child_arena.push(u);
                    count += 1;
                }
            }
            child_len[v] = count;
        }

        // Rank assignment: counting-sort nodes into ascending subtree-size
        // classes, then order each class by (colour, child ranks).
        let mut rank = [0u32; MAX_NODES];
        let mut class_start = [0u8; MAX_NODES + 1];
        for v in 0..n {
            class_start[size[v] as usize] += 1;
        }
        let mut acc = 0u8;
        for slot in class_start.iter_mut().take(n + 1).skip(1) {
            let count = *slot;
            *slot = acc;
            acc += count;
        }
        let mut class_end = class_start;
        let mut by_size = [0u8; MAX_NODES];
        for (v, &s) in size.iter().enumerate().take(n) {
            let s = s as usize;
            by_size[class_end[s] as usize] = v as u8;
            class_end[s] += 1;
        }
        let mut next_rank = 0u32;
        let mut new_group = [false; MAX_NODES];
        for s in 1..=n {
            let lo = class_start[s] as usize;
            let hi = class_end[s] as usize;
            if lo == hi {
                continue;
            }
            // Children first: sort each member's child run by rank, so the
            // preorder walk below visits smallest-code subtrees first.
            for &member in by_size.iter().take(hi).skip(lo) {
                let v = member as usize;
                let cs = child_start[v] as usize;
                let ce = cs + child_len[v] as usize;
                child_arena[cs..ce].sort_unstable_by_key(|&c| rank[c as usize]);
            }
            let ord = |a: u8, b: u8| {
                let key = |v: u8| {
                    let v = v as usize;
                    let cs = child_start[v] as usize;
                    (colors[v], &child_arena[cs..cs + child_len[v] as usize])
                };
                let (color_a, kids_a) = key(a);
                let (color_b, kids_b) = key(b);
                color_a.cmp(&color_b).then_with(|| {
                    kids_a
                        .iter()
                        .map(|&c| rank[c as usize])
                        .cmp(kids_b.iter().map(|&c| rank[c as usize]))
                })
            };
            by_size[lo..hi].sort_unstable_by(|&a, &b| ord(a, b));
            for i in lo + 1..hi {
                new_group[i] = ord(by_size[i - 1], by_size[i]).is_ne();
            }
            for i in lo..hi {
                if new_group[i] {
                    next_rank += 1;
                }
                rank[by_size[i] as usize] = next_rank;
                new_group[i] = false;
            }
            next_rank += 1;
        }

        // Preorder walk in canonical (rank-ascending) child order.
        stack.clear();
        stack.push(root);
        let mut next = 0u32;
        while let Some(v) = stack.pop() {
            perm[v as usize] = next;
            next += 1;
            let s = child_start[v as usize] as usize;
            let l = child_len[v as usize] as usize;
            // Reverse push so the smallest-code child is visited first.
            for j in (s..s + l).rev() {
                stack.push(child_arena[j]);
            }
        }
    }

    // -- search path (refinement + branch-and-bound over arrays) -----------

    /// Mirror of the oracle's `search_code`: initial `(centre, colour)`
    /// partition, then refinement with individualisation branching.
    fn search_code(&mut self, center: Option<u32>, colors: &[u64]) {
        let n = self.n;
        // The keys include the node id, so they are unique and an unstable
        // sort is deterministic.
        let mut keyed = [(0u64, 0u64, 0u8); MAX_NODES];
        for v in 0..n {
            let centered = u64::from(center == Some(v as u32));
            keyed[v] = (centered, colors[v], v as u8);
        }
        keyed[..n].sort_unstable();
        let mut cells = [0u32; MAX_NODES];
        let mut rank = 0u32;
        for i in 0..n {
            if i > 0 && (keyed[i].0, keyed[i].1) != (keyed[i - 1].0, keyed[i - 1].1) {
                rank += 1;
            }
            cells[keyed[i].2 as usize] = rank;
        }
        self.refine_and_branch(center, colors, cells);
    }

    /// Mirror of the oracle's `refine_and_branch`, with the partition in a
    /// fixed array (branching copies 256 bytes, no allocation) and the
    /// target cell handled as a bit mask.
    fn refine_and_branch(&mut self, center: Option<u32>, colors: &[u64], mut cells: [u32; 64]) {
        let n = self.n;
        self.refine(&mut cells);
        let mut cell_count = 0usize;
        for &c in &cells[..n] {
            cell_count = cell_count.max(c as usize + 1);
        }
        if cell_count == n {
            // Discrete: the partition is the canonical labelling candidate.
            encode_into(
                &mut self.candidate,
                &self.rows,
                n,
                self.m,
                center,
                colors,
                &cells,
            );
            self.commit_candidate();
            return;
        }

        // First smallest non-singleton cell (strict `<` keeps the first of
        // equal sizes, matching the oracle's `min_by_key((size, id))`).
        let mut sizes = [0u32; MAX_NODES];
        for &c in &cells[..n] {
            sizes[c as usize] += 1;
        }
        let mut target = usize::MAX;
        let mut target_size = u32::MAX;
        for (c, &size) in sizes[..cell_count].iter().enumerate() {
            if size > 1 && size < target_size {
                target = c;
                target_size = size;
            }
        }
        let mut members: u64 = 0;
        for (v, &c) in cells.iter().enumerate().take(n) {
            if c as usize == target {
                members |= 1 << v;
            }
        }
        let branch_once = interchangeable(&self.rows, members);
        let fresh = cell_count as u32;
        let mut w = members;
        while w != 0 {
            let v = w.trailing_zeros() as usize;
            w &= w - 1;
            let mut next = cells;
            next[v] = fresh;
            self.refine_and_branch(center, colors, next);
            if branch_once {
                break;
            }
        }
    }

    /// Rank-identical mirror of the oracle's `refine`: split cells by the
    /// sorted multiset of neighbouring cell ids until stable.
    ///
    /// The oracle sorts all `n` nodes by `(cells[v], signature)` and
    /// numbers the groups `0, 1, …` in that order.  Because `cells[v]` is
    /// the leading key, that order is exactly: cells in ascending id, and
    /// within each cell its members ordered (and split) by signature — so
    /// this version processes cells independently via one counting-sort
    /// bucket pass.  A node in a *singleton* cell can never tie or swap
    /// with any other node (its leading key is unique), so its signature
    /// is not materialised at all; in the deep branches of the search,
    /// where most cells are already discrete, a round costs only the few
    /// non-singleton cells instead of all `n` nodes.  Within a cell the
    /// sort is unstable, which is rank-safe: ranks depend only on
    /// signature equivalence classes, never on which tied node comes
    /// first.
    fn refine(&mut self, cells: &mut [u32; 64]) {
        let n = self.n;
        let CanonScratch {
            rows,
            sig_data,
            order,
            ..
        } = self;
        let mut cell_count = 0usize;
        for &c in &cells[..n] {
            cell_count = cell_count.max(c as usize + 1);
        }
        loop {
            // Bucket nodes by cell id: after this, `order` holds cell 0's
            // members, then cell 1's, …, each run ascending by node id.
            let mut starts = [0u8; MAX_NODES + 1];
            for &c in &cells[..n] {
                starts[c as usize + 1] += 1;
            }
            for c in 0..cell_count {
                starts[c + 1] += starts[c];
            }
            let mut pos = starts;
            for (v, &c) in cells.iter().enumerate().take(n) {
                let c = c as usize;
                order[pos[c] as usize] = v as u8;
                pos[c] += 1;
            }

            sig_data.clear();
            let mut sig_off = [0u32; MAX_NODES];
            let mut sig_len = [0u8; MAX_NODES];
            let mut next = [0u32; MAX_NODES];
            let mut rank = 0u32;
            for c in 0..cell_count {
                let lo = starts[c] as usize;
                let hi = starts[c + 1] as usize;
                if hi - lo == 1 {
                    next[order[lo] as usize] = rank;
                    rank += 1;
                    continue;
                }
                for &member in order.iter().take(hi).skip(lo) {
                    let v = member as usize;
                    let from = sig_data.len();
                    let mut w = rows[v];
                    while w != 0 {
                        let u = w.trailing_zeros() as usize;
                        w &= w - 1;
                        sig_data.push(cells[u]);
                    }
                    sig_data[from..].sort_unstable();
                    sig_off[v] = from as u32;
                    sig_len[v] = (sig_data.len() - from) as u8;
                }
                let sig = |v: u8| {
                    let v = v as usize;
                    let s = sig_off[v] as usize;
                    &sig_data[s..s + sig_len[v] as usize]
                };
                order[lo..hi].sort_unstable_by(|&a, &b| sig(a).cmp(sig(b)));
                next[order[lo] as usize] = rank;
                for i in lo + 1..hi {
                    if sig(order[i]) != sig(order[i - 1]) {
                        rank += 1;
                    }
                    next[order[i] as usize] = rank;
                }
                rank += 1;
            }
            cells[..n].copy_from_slice(&next[..n]);
            let next_count = rank as usize;
            if next_count == cell_count || next_count == n {
                return;
            }
            cell_count = next_count;
        }
    }
}

/// `true` when every pair of member nodes is swapped by an automorphism:
/// the induced subgraph on the member mask is complete or empty, and all
/// members share one neighbourhood outside the mask.  Word-op mirror of the
/// oracle's `interchangeable` (a row masked by `!members` *is* the outside
/// neighbour set; popcount against `members` is the inside degree).
fn interchangeable(rows: &[u64; 64], members: u64) -> bool {
    let first = members.trailing_zeros() as usize;
    let member_count = members.count_ones();
    let first_inside = (rows[first] & members).count_ones();
    if first_inside != 0 && first_inside != member_count - 1 {
        return false;
    }
    let first_outside = rows[first] & !members;
    let mut w = members & (members - 1);
    while w != 0 {
        let v = w.trailing_zeros() as usize;
        w &= w - 1;
        if (rows[v] & members).count_ones() != first_inside || rows[v] & !members != first_outside {
            return false;
        }
    }
    true
}

/// Mirror of the oracle's `encode`, writing into a reusable buffer: the
/// `[n, m, centre]` header, colours in canonical order, then the edge words
/// `a·n + b` (a < b, canonical numbering) sorted in place at the buffer
/// tail — no intermediate edge vector.
fn encode_into(
    out: &mut Vec<u64>,
    rows: &[u64; 64],
    n: usize,
    m: usize,
    center: Option<u32>,
    colors: &[u64],
    perm: &[u32; 64],
) {
    out.clear();
    out.reserve(3 + n + m);
    out.push(n as u64);
    out.push(m as u64);
    out.push(center.map_or(canon::NO_CENTER, |c| u64::from(perm[c as usize])));
    out.resize(3 + n, 0);
    for (old, &color) in colors.iter().enumerate() {
        out[3 + perm[old] as usize] = color;
    }
    for u in 0..n {
        // Bits above `u`: each edge once, as the oracle's edge iterator.
        let mut w = if u + 1 < MAX_NODES {
            rows[u] & (!0u64 << (u + 1))
        } else {
            0
        };
        while w != 0 {
            let v = w.trailing_zeros() as usize;
            w &= w - 1;
            let a = perm[u].min(perm[v]);
            let b = perm[u].max(perm[v]);
            out.push(u64::from(a) * n as u64 + u64::from(b));
        }
    }
    out[3 + n..].sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{canonical_code_oracle, centered_canonical_code_oracle};
    use crate::generators;

    fn uniform(n: usize) -> Vec<u64> {
        vec![0; n]
    }

    fn varied(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i % 3).collect()
    }

    #[test]
    fn parse_fallback_accepts_only_meaningful_values() {
        assert!(!parse_fallback(None));
        assert!(!parse_fallback(Some("")));
        assert!(!parse_fallback(Some("0")));
        assert!(parse_fallback(Some("1")));
        assert!(parse_fallback(Some("true")));
        assert!(parse_fallback(Some("yes")));
    }

    #[test]
    fn supports_is_the_64_node_boundary() {
        assert!(!supports(&Graph::new()));
        assert!(supports(&generators::path(1)));
        assert!(supports(&generators::path(63)));
        assert!(supports(&generators::path(64)));
        assert!(!supports(&generators::path(65)));
    }

    #[test]
    fn kernel_matches_oracle_on_structured_families() {
        let mut scratch = CanonScratch::new();
        let graphs = [
            generators::path(1),
            generators::path(9),
            generators::cycle(5),
            generators::cycle(64),
            generators::star(7),
            generators::grid(3, 4),
            generators::grid(8, 8),
            generators::complete(6),
            generators::complete_binary_tree(4),
            generators::torus(4, 4).unwrap(),
        ];
        for g in &graphs {
            let n = g.node_count();
            for colors in [uniform(n), varied(n)] {
                assert_eq!(
                    scratch.form(g, None, &colors).as_slice(),
                    canonical_code_oracle(g, &colors).as_slice(),
                    "uncentred mismatch on {n}-node graph"
                );
                for c in [0, n / 2, n - 1] {
                    let c = NodeId::from(c);
                    assert_eq!(
                        scratch.form(g, Some(c), &colors).as_slice(),
                        centered_canonical_code_oracle(g, c, &colors).as_slice(),
                        "centred mismatch on {n}-node graph at {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_matches_oracle_on_disconnected_graphs() {
        let mut scratch = CanonScratch::new();
        let (g, _) = generators::cycle(5).disjoint_union(&generators::path(4));
        let (h, _) = generators::cycle(3).disjoint_union(&generators::cycle(3));
        for g in [&g, &h, &Graph::with_nodes(2)] {
            let n = g.node_count();
            assert_eq!(
                scratch.form(g, None, &varied(n)).as_slice(),
                canonical_code_oracle(g, &varied(n)).as_slice()
            );
        }
    }

    #[test]
    fn batch_codes_equal_per_call_codes() {
        let mut scratch = CanonScratch::new();
        let g = generators::grid(5, 5);
        let colors = varied(g.node_count());
        let centers: Vec<NodeId> = g.nodes().collect();
        let batch: Vec<CanonicalCode> = scratch.canonicalize_batch(&g, &colors, &centers).to_vec();
        assert_eq!(batch.len(), centers.len());
        for (i, &c) in centers.iter().enumerate() {
            assert_eq!(
                batch[i].as_slice(),
                centered_canonical_code_oracle(&g, c, &colors).as_slice()
            );
        }
    }

    #[test]
    fn seam_63_64_routes_to_the_kernel_and_65_falls_back() {
        if fallback_forced() {
            // Under LD_CANON_FALLBACK the routing assertions are moot; code
            // equality is covered by the byte-diffed CI smoke instead.
            return;
        }
        let mut scratch = CanonScratch::new();
        for n in [63usize, 64] {
            let g = generators::path(n);
            let before = scratch.kernel_calls();
            let code = scratch.centered_code(&g, NodeId(0), &uniform(n));
            assert_eq!(
                scratch.kernel_calls(),
                before + 1,
                "{n} nodes must route to the kernel"
            );
            assert_eq!(
                code.as_slice(),
                centered_canonical_code_oracle(&g, NodeId(0), &uniform(n)).as_slice()
            );
        }
        let g = generators::path(65);
        let before = scratch.kernel_calls();
        let code = scratch.centered_code(&g, NodeId(0), &uniform(65));
        assert_eq!(scratch.kernel_calls(), before, "65 nodes must fall back");
        assert_eq!(
            code.as_slice(),
            centered_canonical_code_oracle(&g, NodeId(0), &uniform(65)).as_slice()
        );
    }

    #[test]
    fn codes_are_identical_across_the_seam_for_isomorphic_inputs() {
        // A 64-node graph and its relabelling canonicalise identically no
        // matter which side computes which: kernel(g) == oracle(relabel(g)).
        let mut scratch = CanonScratch::new();
        for n in [63usize, 64] {
            let g = generators::cycle(n);
            let perm: Vec<usize> = (0..n).rev().collect();
            let h = g.relabel(&perm).unwrap();
            assert_eq!(
                scratch.form(&g, None, &uniform(n)).as_slice(),
                canonical_code_oracle(&h, &uniform(n)).as_slice()
            );
        }
    }

    #[test]
    fn repeated_calls_reuse_buffers() {
        // Not a real allocation counter (no global allocator hooks in this
        // workspace), but the arena capacities must reach a fixed point.
        let mut scratch = CanonScratch::new();
        let g = generators::grid(6, 6);
        let colors = uniform(36);
        for _ in 0..3 {
            scratch.form(&g, Some(NodeId(7)), &colors);
        }
        let best = scratch.best.capacity();
        let sig = scratch.sig_data.capacity();
        for _ in 0..16 {
            scratch.form(&g, Some(NodeId(7)), &colors);
        }
        assert_eq!(scratch.best.capacity(), best);
        assert_eq!(scratch.sig_data.capacity(), sig);
    }
}
