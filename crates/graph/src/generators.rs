//! Deterministic generators for every graph family used by the paper, plus a
//! few random generators used in tests and benchmarks.
//!
//! The families directly referenced by the paper:
//!
//! * **cycles** — both promise problems (Section 2 and Section 3) live on
//!   `n`-cycles;
//! * **complete binary trees / layered trees** — the Section 2 separation
//!   (`T_r`, `H_r`, Figure 1);
//! * **square grids** — Turing-machine execution tables (Section 3,
//!   Figure 2);
//! * **layered quadtree pyramids** — the Appendix A gadget that makes grids
//!   locally checkable (Figure 3).

use crate::graph::{Graph, NodeId};
use crate::{GraphError, Result};
use rand::Rng;

/// Path on `n` nodes `0 - 1 - ... - n-1`.  `path(0)` is the empty graph.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId::from(i - 1), NodeId::from(i))
            .expect("path edges are simple and in range");
    }
    g
}

/// Cycle on `n >= 3` nodes; for `n <= 2` this falls back to a path, which
/// keeps small-parameter sweeps total.
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(NodeId::from(n - 1), NodeId(0))
            .expect("closing edge of a cycle is simple");
    }
    g
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(NodeId::from(u), NodeId::from(v))
                .expect("complete graph edges are simple");
        }
    }
    g
}

/// Star with one centre (node 0) and `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::with_nodes(leaves + 1);
    for leaf in 1..=leaves {
        g.add_edge(NodeId(0), NodeId::from(leaf))
            .expect("star edges are simple");
    }
    g
}

/// `width x height` grid graph; node `(x, y)` has index `y * width + x`.
///
/// Two nodes are adjacent when their Euclidean distance is 1, exactly as the
/// paper defines the execution-table grid.
pub fn grid(width: usize, height: usize) -> Graph {
    let mut g = Graph::with_nodes(width * height);
    for y in 0..height {
        for x in 0..width {
            let here = y * width + x;
            if x + 1 < width {
                g.add_edge(NodeId::from(here), NodeId::from(here + 1))
                    .expect("grid edges are simple");
            }
            if y + 1 < height {
                g.add_edge(NodeId::from(here), NodeId::from(here + width))
                    .expect("grid edges are simple");
            }
        }
    }
    g
}

/// Index of grid node `(x, y)` in the graph returned by [`grid`].
pub fn grid_index(width: usize, x: usize, y: usize) -> NodeId {
    NodeId::from(y * width + x)
}

/// `width x height` torus: a grid with wrap-around edges in both dimensions.
/// Locally (for radius below `min(width, height) / 2 - 1`) it is
/// indistinguishable from a grid interior — the paper uses exactly this fact
/// to motivate the quadtree gadget of Appendix A.
pub fn torus(width: usize, height: usize) -> Result<Graph> {
    if width < 3 || height < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("torus requires both dimensions >= 3, got {width}x{height}"),
        });
    }
    let mut g = Graph::with_nodes(width * height);
    for y in 0..height {
        for x in 0..width {
            let here = y * width + x;
            let right = y * width + (x + 1) % width;
            let down = ((y + 1) % height) * width + x;
            g.add_edge_idempotent(NodeId::from(here), NodeId::from(right))?;
            g.add_edge_idempotent(NodeId::from(here), NodeId::from(down))?;
        }
    }
    Ok(g)
}

/// Complete binary tree of depth `depth` (a single node for depth 0).
///
/// Level `y` (`0 <= y <= depth`) holds `2^y` nodes; node `(x, y)` has index
/// [`binary_tree_index`]`(x, y)`.
pub fn complete_binary_tree(depth: u32) -> Graph {
    let n = binary_tree_node_count(depth);
    let mut g = Graph::with_nodes(n);
    for y in 1..=depth {
        for x in 0..(1u64 << y) {
            let child = binary_tree_index(x, y);
            let parent = binary_tree_index(x / 2, y - 1);
            g.add_edge(parent, child).expect("tree edges are simple");
        }
    }
    g
}

/// Number of nodes of a complete binary tree of depth `depth`.
pub fn binary_tree_node_count(depth: u32) -> usize {
    (1usize << (depth + 1)) - 1
}

/// Index of the node at horizontal position `x` on level `y` of a complete
/// binary tree (or layered tree): levels are stored consecutively, so the
/// index is `2^y - 1 + x`.
pub fn binary_tree_index(x: u64, y: u32) -> NodeId {
    NodeId::from(((1u64 << y) - 1 + x) as usize)
}

/// Layered complete binary tree of depth `depth` (Section 2 of the paper):
/// a complete binary tree where, additionally, the nodes of each level are
/// connected by a path in the natural left-to-right order.
pub fn layered_tree(depth: u32) -> Graph {
    let mut g = complete_binary_tree(depth);
    for y in 1..=depth {
        for x in 1..(1u64 << y) {
            g.add_edge(binary_tree_index(x - 1, y), binary_tree_index(x, y))
                .expect("level-path edges are simple and new");
        }
    }
    g
}

/// Coordinates `(x, y)` of every node of [`layered_tree`]`(depth)`, indexed
/// by node id.  Used by the Section 2 construction, whose labels carry these
/// coordinates.
pub fn layered_tree_coordinates(depth: u32) -> Vec<(u64, u32)> {
    let mut coords = Vec::with_capacity(binary_tree_node_count(depth));
    for y in 0..=depth {
        for x in 0..(1u64 << y) {
            coords.push((x, y));
        }
    }
    coords
}

/// A layered quadtree pyramid over a `2^h x 2^h` base grid (Appendix A,
/// Figure 3).
///
/// Levels are numbered `z = 0..=h`; level `z` is a square grid on
/// `2^(h-z) x 2^(h-z)` nodes and every node `(x, y, z)` with `z < h` is also
/// connected to its quadtree parent `(floor(x/2), floor(y/2), z + 1)`.
///
/// Returns the graph together with the `(x, y, z)` coordinate of each node.
///
/// The paper indexes nodes from 1 and connects `(x, y, z)` to
/// `(ceil(x/2), ceil(y/2), z+1)`; with 0-based coordinates the same parent is
/// `(floor(x/2), floor(y/2), z+1)`.
pub fn quadtree_pyramid(h: u32) -> (Graph, Vec<(usize, usize, u32)>) {
    let mut coords = Vec::new();
    let mut level_offset = Vec::with_capacity(h as usize + 2);
    let mut total = 0usize;
    for z in 0..=h {
        level_offset.push(total);
        let side = 1usize << (h - z);
        for y in 0..side {
            for x in 0..side {
                coords.push((x, y, z));
            }
        }
        total += side * side;
    }
    level_offset.push(total);

    let index = |x: usize, y: usize, z: u32| -> NodeId {
        let side = 1usize << (h - z);
        NodeId::from(level_offset[z as usize] + y * side + x)
    };

    let mut g = Graph::with_nodes(total);
    for z in 0..=h {
        let side = 1usize << (h - z);
        for y in 0..side {
            for x in 0..side {
                let here = index(x, y, z);
                if x + 1 < side {
                    g.add_edge(here, index(x + 1, y, z)).expect("grid edge");
                }
                if y + 1 < side {
                    g.add_edge(here, index(x, y + 1, z)).expect("grid edge");
                }
                if z < h {
                    g.add_edge_idempotent(here, index(x / 2, y / 2, z + 1))
                        .expect("parent edge endpoints are in range");
                }
            }
        }
    }
    (g, coords)
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn random_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(NodeId::from(u), NodeId::from(v))
                    .expect("gnp edges are generated once");
            }
        }
    }
    g
}

/// Uniformly random labelled tree on `n` nodes via a random Prüfer-like
/// attachment process (each node `i >= 1` attaches to a uniformly random
/// earlier node).
pub fn random_attachment_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(NodeId::from(parent), NodeId::from(i))
            .expect("attachment edges are simple");
    }
    g
}

/// A connected random graph: a random attachment tree plus `extra_edges`
/// additional uniformly random non-edges (or fewer if the graph saturates).
pub fn random_connected<R: Rng + ?Sized>(n: usize, extra_edges: usize, rng: &mut R) -> Graph {
    let mut g = random_attachment_tree(n, rng);
    if n < 2 {
        return g;
    }
    let mut added = 0;
    let mut attempts = 0;
    let max_attempts = extra_edges.saturating_mul(20) + 100;
    while added < extra_edges && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if g.add_edge_idempotent(NodeId::from(u), NodeId::from(v))
            .expect("endpoints are in range and distinct")
        {
            added += 1;
        }
    }
    g
}

/// Random `d`-regular graph on `n` nodes via the pairing (configuration)
/// model: half-edges are shuffled into a perfect matching, rejecting and
/// reshuffling whenever the matching produces a loop or parallel edge.  The
/// rejection probability is bounded away from 1 for fixed `d`, so a handful
/// of restarts suffice; a generous deterministic cap keeps the generator
/// total.
///
/// # Errors
///
/// `InvalidParameter` when `n * d` is odd (no `d`-regular graph exists),
/// `d >= n` (simple graphs cap degree at `n - 1`), or the pairing fails to
/// simplify within the restart cap (not observed for the swept parameters).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if n * d % 2 != 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("no {d}-regular graph on {n} nodes: n*d must be even"),
        });
    }
    if d >= n && !(n == 0 && d == 0) {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree {d} needs at least {} nodes (got {n})", d + 1),
        });
    }
    if d == 0 {
        return Ok(Graph::with_nodes(n));
    }
    // Half-edge i belongs to node i / d; a shuffle of the half-edges read
    // off in consecutive pairs is a uniform perfect matching on them.
    let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
    const MAX_RESTARTS: usize = 1_000;
    for _ in 0..MAX_RESTARTS {
        for i in (1..stubs.len()).rev() {
            stubs.swap(i, rng.gen_range(0..=i));
        }
        let mut g = Graph::with_nodes(n);
        let mut simple = true;
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v
                || !g
                    .add_edge_idempotent(NodeId::from(u), NodeId::from(v))
                    .expect("stub endpoints are in range")
            {
                simple = false;
                break;
            }
        }
        if simple {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameter {
        reason: format!("pairing model failed to produce a simple {d}-regular graph on {n} nodes"),
    })
}

/// Power-law graph via preferential attachment (Barabási–Albert): the seed
/// is the complete graph on `m + 1` nodes, and each later node attaches to
/// `m` distinct existing nodes chosen proportionally to their degree — so
/// every node has degree at least `m` and the degree distribution develops
/// the heavy tail the DSL's power-law property cells sweep.
///
/// # Errors
///
/// `InvalidParameter` when `m == 0` (the graph would be edgeless and
/// disconnected) or `n < m + 1` (smaller than its own seed clique).
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "preferential attachment needs m >= 1".to_string(),
        });
    }
    if n < m + 1 {
        return Err(GraphError::InvalidParameter {
            reason: format!("preferential attachment needs n >= m + 1 (got n = {n}, m = {m})"),
        });
    }
    let mut g = Graph::with_nodes(n);
    // One entry per half-edge endpoint: sampling it uniformly is sampling a
    // node proportionally to its degree.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * (m * (m + 1) / 2 + (n - m - 1) * m));
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_edge(NodeId::from(u), NodeId::from(v))
                .expect("seed clique edges are simple");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for node in (m + 1)..n {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        while targets.len() < m {
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&target) {
                targets.push(target);
            }
        }
        for target in targets {
            g.add_edge(NodeId::from(node), NodeId::from(target))
                .expect("attachment edges are simple");
            endpoints.push(node);
            endpoints.push(target);
        }
    }
    Ok(g)
}

/// Circulant graph `C_n(offsets)`: node `i` is adjacent to `i ± o (mod n)`
/// for every offset `o`.  With offsets coprime-ish to `n` (e.g. `{1, k}`
/// with `k ~ sqrt(n)`) these are the classic bounded-degree expander-like
/// constructions: vertex-transitive, diameter `O(n / max_offset +
/// max_offset)`, degree at most `2 * offsets.len()`.
///
/// # Errors
///
/// `InvalidParameter` when `offsets` is empty, or an offset is `0` (a
/// self-loop) or `>= n` (aliases a smaller offset, so the requested degree
/// is unrealisable).
pub fn circulant(n: usize, offsets: &[usize]) -> Result<Graph> {
    if offsets.is_empty() {
        return Err(GraphError::InvalidParameter {
            reason: "circulant graphs need at least one offset".to_string(),
        });
    }
    for &o in offsets {
        if o == 0 || o >= n {
            return Err(GraphError::InvalidParameter {
                reason: format!("circulant offset {o} is outside 1..{n}"),
            });
        }
    }
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for &o in offsets {
            // An offset of exactly n/2 meets itself from both sides; the
            // idempotent insert keeps the graph simple.
            g.add_edge_idempotent(NodeId::from(i), NodeId::from((i + o) % n))
                .expect("circulant endpoints are in range and distinct");
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_counts() {
        let g = path(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_tree());
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_counts_and_regularity() {
        let g = cycle(7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.is_regular(2));
        assert!(g.is_connected());
        // Degenerate sizes fall back to paths.
        assert_eq!(cycle(2).edge_count(), 1);
        assert_eq!(cycle(1).edge_count(), 0);
    }

    #[test]
    fn complete_graph_edge_count() {
        assert_eq!(complete(5).edge_count(), 10);
        assert!(complete(5).is_regular(4));
    }

    #[test]
    fn star_has_centre_of_full_degree() {
        let g = star(6);
        assert_eq!(g.degree(NodeId(0)).unwrap(), 6);
        assert!(g.is_tree());
    }

    #[test]
    fn grid_structure() {
        let g = grid(4, 3);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2);
        assert_eq!(g.degree(grid_index(4, 0, 0)).unwrap(), 2);
        assert_eq!(g.degree(grid_index(4, 1, 1)).unwrap(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5).unwrap();
        assert!(g.is_regular(4));
        assert_eq!(g.node_count(), 20);
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn complete_binary_tree_structure() {
        let g = complete_binary_tree(3);
        assert_eq!(g.node_count(), 15);
        assert!(g.is_tree());
        assert_eq!(g.degree(binary_tree_index(0, 0)).unwrap(), 2);
        // Leaves have degree 1.
        assert_eq!(g.degree(binary_tree_index(5, 3)).unwrap(), 1);
    }

    #[test]
    fn layered_tree_adds_level_paths() {
        let depth = 3;
        let tree = complete_binary_tree(depth);
        let layered = layered_tree(depth);
        // Level y >= 1 contributes 2^y - 1 extra path edges.
        let extra: usize = (1..=depth).map(|y| (1usize << y) - 1).sum();
        assert_eq!(layered.edge_count(), tree.edge_count() + extra);
        // Interior level node: parent + 2 children + 2 level neighbours.
        assert_eq!(layered.degree(binary_tree_index(1, 2)).unwrap(), 5);
    }

    #[test]
    fn layered_tree_coordinates_match_indexing() {
        let coords = layered_tree_coordinates(3);
        assert_eq!(coords.len(), binary_tree_node_count(3));
        for (i, &(x, y)) in coords.iter().enumerate() {
            assert_eq!(binary_tree_index(x, y).index(), i);
        }
    }

    #[test]
    fn quadtree_pyramid_level_sizes() {
        let (g, coords) = quadtree_pyramid(2);
        // Levels: 4x4 + 2x2 + 1x1 = 21 nodes.
        assert_eq!(g.node_count(), 21);
        assert_eq!(coords.len(), 21);
        assert!(g.is_connected());
        let top_count = coords.iter().filter(|&&(_, _, z)| z == 2).count();
        assert_eq!(top_count, 1);
        // Each level-0 node has exactly one parent edge, so total edges are
        // grid edges (2*4*3 at level 0, 2*2*1 at level 1, none at the apex)
        // plus 16 + 4 parent edges.
        assert_eq!(g.edge_count(), 24 + 4 + 16 + 4);
    }

    #[test]
    fn quadtree_pyramid_parents_are_quadrants() {
        let (g, coords) = quadtree_pyramid(2);
        // Find node (3, 3, 0) and check it is adjacent to (1, 1, 1).
        let find = |x, y, z| NodeId::from(coords.iter().position(|&c| c == (x, y, z)).unwrap());
        assert!(g.has_edge(find(3, 3, 0), find(1, 1, 1)));
        assert!(g.has_edge(find(1, 1, 1), find(0, 0, 2)));
    }

    #[test]
    fn random_generators_produce_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_attachment_tree(40, &mut rng);
        assert!(t.is_tree());
        let c = random_connected(30, 15, &mut rng);
        assert!(c.is_connected());
        assert!(c.edge_count() >= 29);
        let gnp = random_gnp(20, 0.5, &mut rng);
        assert_eq!(gnp.node_count(), 20);
    }

    #[test]
    fn random_gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(random_gnp(10, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = StdRng::seed_from_u64(11);
        for (n, d) in [(8, 3), (20, 4), (21, 4), (6, 5), (10, 0)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            assert!(g.is_regular(d), "n = {n}, d = {d}");
            assert_eq!(g.edge_count(), n * d / 2);
        }
    }

    #[test]
    fn random_regular_rejects_impossible_parameters() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(random_regular(7, 3, &mut rng).is_err(), "odd n*d");
        assert!(random_regular(4, 4, &mut rng).is_err(), "d >= n");
        assert!(random_regular(4, 5, &mut rng)
            .unwrap_err()
            .to_string()
            .contains("degree 5"));
    }

    #[test]
    fn preferential_attachment_bounds_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = 2;
        let g = preferential_attachment(60, m, &mut rng).unwrap();
        assert_eq!(g.node_count(), 60);
        assert!(g.is_connected());
        // Seed clique edges plus m per later node.
        assert_eq!(g.edge_count(), m * (m + 1) / 2 + (60 - m - 1) * m);
        for v in 0..60 {
            assert!(g.degree(NodeId::from(v)).unwrap() >= m);
        }
        assert!(preferential_attachment(10, 0, &mut rng).is_err());
        assert!(preferential_attachment(2, 2, &mut rng).is_err());
    }

    #[test]
    fn circulant_structure() {
        let g = circulant(12, &[1, 5]).unwrap();
        assert!(g.is_regular(4));
        assert!(g.is_connected());
        assert!(g.has_edge(NodeId(0), NodeId(5)));
        // C_n({1}) is the n-cycle.
        let ring = circulant(9, &[1]).unwrap();
        assert_eq!(ring.edge_count(), 9);
        assert!(ring.is_regular(2));
        // The half-way offset meets itself: degree drops to 3, still simple.
        let moebius = circulant(8, &[1, 4]).unwrap();
        assert!(moebius.is_regular(3));
        assert!(circulant(5, &[]).is_err());
        assert!(circulant(5, &[0]).is_err());
        assert!(circulant(5, &[5]).is_err());
    }
}
