//! Total canonical forms for small coloured graphs.
//!
//! [`wl_hash`](crate::iso::wl_hash) is only a *bucketing heuristic*: two
//! isomorphic graphs always agree on it, but non-isomorphic graphs may
//! collide (the 6-cycle and the disjoint union of two triangles are the
//! classic example — every node of both looks locally like "degree 2, all
//! neighbours degree 2", so colour refinement can never tell them apart).
//! The seed pipeline therefore had to follow every hash bucket with pairwise
//! backtracking isomorphism, making deduplication quadratic per bucket.
//!
//! This module computes a **total invariant** instead: a [`CanonicalCode`]
//! that is equal for two coloured (optionally centred) graphs *iff* they are
//! isomorphic by a colour- and centre-preserving isomorphism.  Equality of
//! codes is plain `==`, so deduplicating `k` views costs `k` hash-set
//! insertions instead of `O(k²)` isomorphism tests.
//!
//! Two algorithms produce the canonical labelling behind a code:
//!
//! * **Tree fast path** — most balls in the families this repo sweeps
//!   (cycles, paths, layered trees) are trees, detected via
//!   [`Graph::is_tree`].  Rooted coloured trees are canonised by the classic
//!   AHU scheme: subtree codes are computed bottom-up, children are ordered
//!   by their codes, and the preorder walk in that order is the canonical
//!   labelling.  Linear-ish time, no search.
//! * **Individualisation–refinement** — general (small) graphs go through
//!   iterative colour refinement; when the partition stabilises without
//!   becoming discrete, the first smallest non-singleton cell is picked, each
//!   of its vertices is individualised in turn, and the search recurses,
//!   keeping the lexicographically least adjacency code over all leaves.
//!   Interchangeable vertices (equal neighbourhoods outside a clique or
//!   independent cell) are branch-pruned, which keeps complete graphs and
//!   star centres linear instead of factorial.
//!
//! Codes embed the *raw* colour values, the full edge list in canonical
//! order, and the centre position, so two graphs with equal codes agree on
//! everything the code encodes — the only approximation callers introduce is
//! hashing arbitrary labels into the `u64` colour space before calling in
//! (a 2⁻⁶⁴-style collision risk, same order as trusting any content hash).

use crate::graph::{Graph, NodeId};

/// A total canonical invariant of a coloured (optionally centred) graph.
///
/// Two codes compare equal iff the underlying graphs are isomorphic by a
/// colour-preserving (and centre-preserving, when a centre was given)
/// isomorphism.  The ordering (`Ord`) is arbitrary but total and stable, so
/// codes can key `BTreeMap`s as well as hash sets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode(Vec<u64>);

impl CanonicalCode {
    /// The raw code words: a `[n, m, centre]` header, then colours in
    /// canonical order, edges in canonical order, and any appended tags —
    /// always at least the 3-word header, even for the empty graph.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Wraps words the bitset kernel emitted.  Crate-private: the only
    /// producers of code words are this module and [`crate::fastcanon`],
    /// which mirrors this module's encode layout byte for byte.
    pub(crate) fn from_words(words: Vec<u64>) -> Self {
        CanonicalCode(words)
    }

    /// Appends a context word (e.g. a view radius) to the code.  Codes with
    /// different tags never compare equal, so callers can embed ambient data
    /// that is not part of the graph itself.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.0.push(tag);
        self
    }
}

/// Canonical code of a coloured graph (no distinguished centre).
///
/// # Panics
///
/// Panics if `colors.len() != graph.node_count()`.
pub fn canonical_code(graph: &Graph, colors: &[u64]) -> CanonicalCode {
    canonical_form(graph, None, colors)
}

/// Canonical code of a coloured graph with a distinguished centre: codes are
/// equal iff some colour-preserving isomorphism maps centre to centre.
///
/// # Panics
///
/// Panics if `center` is out of range or `colors.len() != graph.node_count()`.
pub fn centered_canonical_code(graph: &Graph, center: NodeId, colors: &[u64]) -> CanonicalCode {
    canonical_form(graph, Some(center), colors)
}

/// [`canonical_code`], forced onto the original refinement +
/// branch-and-bound path.  This is the **differential oracle** for the
/// bitset kernel in [`crate::fastcanon`]: the kernel must reproduce these
/// bytes exactly, and `tests/tests/fastcanon_differential.rs` holds it to
/// that.  Production callers want [`canonical_code`], which picks the fast
/// path automatically.
///
/// # Panics
///
/// Panics if `colors.len() != graph.node_count()`.
pub fn canonical_code_oracle(graph: &Graph, colors: &[u64]) -> CanonicalCode {
    oracle_form(graph, None, colors)
}

/// [`centered_canonical_code`], forced onto the original path — the centred
/// differential oracle for the bitset kernel.
///
/// # Panics
///
/// Panics if `center` is out of range or `colors.len() != graph.node_count()`.
pub fn centered_canonical_code_oracle(
    graph: &Graph,
    center: NodeId,
    colors: &[u64],
) -> CanonicalCode {
    oracle_form(graph, Some(center), colors)
}

/// Shared entry point: balls in the ≤ 64-node regime run on the
/// word-parallel kernel ([`crate::fastcanon`], byte-identical output unless
/// `LD_CANON_FALLBACK` forces the oracle); everything else takes the
/// original tree / search paths.
fn canonical_form(graph: &Graph, center: Option<NodeId>, colors: &[u64]) -> CanonicalCode {
    if crate::fastcanon::accelerates(graph) {
        // The kernel re-validates the colour/centre contracts and mirrors
        // this module's orderings exactly; see its module docs for why the
        // bytes cannot differ.
        return crate::fastcanon::thread_form(graph, center, colors);
    }
    oracle_form(graph, center, colors)
}

/// The original canonicalisation pipeline (header fast path, AHU trees,
/// refinement + branch-and-bound search) — the target of every oracle entry
/// point and the fallback for graphs the kernel does not support.
pub(crate) fn oracle_form(graph: &Graph, center: Option<NodeId>, colors: &[u64]) -> CanonicalCode {
    let n = graph.node_count();
    assert_eq!(n, colors.len(), "one colour per node is required");
    if let Some(c) = center {
        assert!(c.index() < n, "center must be a node of the graph");
    }
    if n == 0 {
        return CanonicalCode(vec![0, 0, NO_CENTER]);
    }
    if graph.is_tree() {
        tree_code(graph, center, colors)
    } else {
        search_code(graph, center, colors)
    }
}

/// Centre marker used in the code header when no centre is distinguished.
pub(crate) const NO_CENTER: u64 = u64::MAX;

/// Emits the code of `graph` under the canonical labelling `perm`
/// (`perm[old] = new`): header, colours in canonical order, sorted edges.
fn encode(graph: &Graph, center: Option<NodeId>, colors: &[u64], perm: &[u32]) -> Vec<u64> {
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut code = Vec::with_capacity(3 + n + m);
    code.push(n as u64);
    code.push(m as u64);
    code.push(center.map_or(NO_CENTER, |c| u64::from(perm[c.index()])));
    code.resize(3 + n, 0);
    for (old, &color) in colors.iter().enumerate() {
        code[3 + perm[old] as usize] = color;
    }
    let mut edges: Vec<u64> = graph
        .edges()
        .map(|(u, v)| {
            let a = u64::from(perm[u.index()].min(perm[v.index()]));
            let b = u64::from(perm[u.index()].max(perm[v.index()]));
            a * n as u64 + b
        })
        .collect();
    edges.sort_unstable();
    code.extend(edges);
    code
}

// ---------------------------------------------------------------------------
// Tree fast path (AHU)
// ---------------------------------------------------------------------------

/// Canonical code of a coloured tree.  Centred trees are rooted at the
/// centre; uncentred trees are rooted at their (1 or 2) graph centres with
/// the lexicographically smaller code winning.
fn tree_code(graph: &Graph, center: Option<NodeId>, colors: &[u64]) -> CanonicalCode {
    let roots: Vec<NodeId> = match center {
        Some(c) => vec![c],
        None => tree_centers(graph),
    };
    let code = roots
        .into_iter()
        .map(|root| {
            let perm = rooted_tree_perm(graph, root, colors);
            encode(graph, center, colors, &perm)
        })
        .min()
        .expect("a non-empty tree has at least one candidate root");
    CanonicalCode(code)
}

/// The 1 or 2 centres of a tree, found by repeatedly stripping leaves.
fn tree_centers(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    if n == 1 {
        return vec![NodeId(0)];
    }
    let mut degree: Vec<usize> = graph
        .nodes()
        .map(|v| graph.degree(v).expect("node is in range"))
        .collect();
    let mut layer: Vec<NodeId> = graph.nodes().filter(|v| degree[v.index()] <= 1).collect();
    let mut remaining = n;
    while remaining > 2 {
        remaining -= layer.len();
        let mut next = Vec::new();
        for &leaf in &layer {
            degree[leaf.index()] = 0;
            for u in graph.neighbors(leaf) {
                if degree[u.index()] > 0 {
                    degree[u.index()] -= 1;
                    if degree[u.index()] == 1 {
                        next.push(u);
                    }
                }
            }
        }
        layer = next;
    }
    layer.sort_unstable();
    layer
}

/// The canonical labelling of a coloured tree rooted at `root`: AHU subtree
/// codes computed bottom-up, children visited in code order, preorder
/// positions as the permutation.
fn rooted_tree_perm(graph: &Graph, root: NodeId, colors: &[u64]) -> Vec<u32> {
    let n = graph.node_count();
    // BFS rooting.
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut bfs_order: Vec<NodeId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    seen[root.index()] = true;
    bfs_order.push(root);
    let mut head = 0;
    while head < bfs_order.len() {
        let u = bfs_order[head];
        head += 1;
        for v in graph.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = u.index();
                bfs_order.push(v);
            }
        }
    }
    debug_assert_eq!(bfs_order.len(), n, "tree is connected");

    // Bottom-up AHU codes: code(v) = [subtree size, colour, sorted child
    // codes...] — length-prefixed, so lexicographic Vec<u64> comparison is a
    // total order under which equal codes mean isomorphic coloured subtrees.
    let mut codes: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut ordered_children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &v in bfs_order.iter().rev() {
        let mut children: Vec<NodeId> = graph
            .neighbors(v)
            .filter(|u| parent[u.index()] == v.index())
            .collect();
        children.sort_by(|a, b| codes[a.index()].cmp(&codes[b.index()]));
        let mut code = vec![0, colors[v.index()]];
        for &child in &children {
            code.extend_from_slice(&codes[child.index()]);
        }
        code[0] = code.len() as u64;
        codes[v.index()] = code;
        ordered_children[v.index()] = children;
    }

    // Preorder walk visiting children in canonical order.
    let mut perm = vec![0u32; n];
    let mut next = 0u32;
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        perm[v.index()] = next;
        next += 1;
        // Reverse push so the smallest-code child is visited first.
        for &child in ordered_children[v.index()].iter().rev() {
            stack.push(child);
        }
    }
    perm
}

// ---------------------------------------------------------------------------
// General graphs: individualisation–refinement with branch pruning
// ---------------------------------------------------------------------------

/// Canonical code of a general coloured graph via refinement plus
/// branch-and-bound individualisation.
fn search_code(graph: &Graph, center: Option<NodeId>, colors: &[u64]) -> CanonicalCode {
    let n = graph.node_count();
    // Initial cells: rank nodes by (centre flag, colour) so the starting
    // partition is isomorphism-invariant.
    let mut keyed: Vec<(u64, u64, usize)> = (0..n)
        .map(|v| {
            let centered = u64::from(center.is_some_and(|c| c.index() == v));
            (centered, colors[v], v)
        })
        .collect();
    keyed.sort_unstable();
    let mut cells = vec![0u32; n];
    let mut rank = 0u32;
    for i in 0..n {
        if i > 0 && (keyed[i].0, keyed[i].1) != (keyed[i - 1].0, keyed[i - 1].1) {
            rank += 1;
        }
        cells[keyed[i].2] = rank;
    }

    let mut best: Option<Vec<u64>> = None;
    let mut scratch = RefineScratch::default();
    refine_and_branch(graph, center, colors, cells, &mut best, &mut scratch);
    CanonicalCode(best.expect("the search visits at least one discrete leaf"))
}

/// Buffers reused by every [`refine`] call of one search: the search tree
/// visits many nodes and refinement runs at each, so per-call allocation
/// would dominate.
#[derive(Default)]
struct RefineScratch {
    sig_data: Vec<u32>,
    sig_start: Vec<usize>,
    order: Vec<usize>,
    next: Vec<u32>,
}

/// Refines `cells` to a stable partition, then either emits a leaf code or
/// branches on the first smallest non-singleton cell.
fn refine_and_branch(
    graph: &Graph,
    center: Option<NodeId>,
    colors: &[u64],
    mut cells: Vec<u32>,
    best: &mut Option<Vec<u64>>,
    scratch: &mut RefineScratch,
) {
    refine(graph, &mut cells, scratch);
    let n = graph.node_count();
    let cell_count = cells.iter().copied().max().map_or(0, |m| m as usize + 1);
    if cell_count == n {
        // Discrete: the partition is the canonical labelling candidate.
        let code = encode(graph, center, colors, &cells);
        if !best.as_ref().is_some_and(|b| *b <= code) {
            *best = Some(code);
        }
        return;
    }

    // First smallest non-singleton cell (cell ids are isomorphism-invariant
    // ranks, so this choice is invariant too).
    let mut sizes = vec![0usize; cell_count];
    for &c in &cells {
        sizes[c as usize] += 1;
    }
    let target = (0..cell_count)
        .filter(|&c| sizes[c] > 1)
        .min_by_key(|&c| (sizes[c], c))
        .expect("a non-discrete partition has a non-singleton cell");
    let members: Vec<usize> = (0..n).filter(|&v| cells[v] as usize == target).collect();

    // Branch pruning: when the target cell induces a clique or an
    // independent set and all members share the same neighbourhood outside
    // the cell, any two members are exchanged by an automorphism — the
    // branches are identical, so one suffices.  This is what keeps complete
    // graphs linear instead of factorial.
    let branch_once = interchangeable(graph, &members);
    let fresh = cells.iter().copied().max().expect("n > 0") + 1;
    for &v in &members {
        let mut next = cells.clone();
        next[v] = fresh;
        refine_and_branch(graph, center, colors, next, best, scratch);
        if branch_once {
            break;
        }
    }
}

/// `true` when every pair of `members` is swapped by an automorphism:
/// the induced subgraph on `members` is complete or empty, and all members
/// have identical neighbour sets outside `members`.
fn interchangeable(graph: &Graph, members: &[usize]) -> bool {
    let inside = |v: usize| members.contains(&v);
    let first_outside: Vec<usize> = graph
        .neighbors(NodeId::from(members[0]))
        .map(super::graph::NodeId::index)
        .filter(|&u| !inside(u))
        .collect();
    let first_inside_degree = graph
        .neighbors(NodeId::from(members[0]))
        .filter(|u| inside(u.index()))
        .count();
    if first_inside_degree != 0 && first_inside_degree != members.len() - 1 {
        return false;
    }
    for &v in &members[1..] {
        let mut inside_degree = 0;
        let mut outside: Vec<usize> = Vec::with_capacity(first_outside.len());
        for u in graph.neighbors(NodeId::from(v)) {
            if inside(u.index()) {
                inside_degree += 1;
            } else {
                outside.push(u.index());
            }
        }
        if inside_degree != first_inside_degree || outside != first_outside {
            return false;
        }
    }
    true
}

/// Iterative 1-dimensional colour refinement: split cells by the multiset of
/// neighbouring cell ids until stable.  Cell ids are ranks of sorted
/// signatures, hence isomorphism-invariant.
///
/// Signatures live in one flat buffer (`sig_data` sliced by `sig_start`), so
/// a refinement round performs no per-node allocations — this runs once per
/// node of the individualisation search tree and dominates canonicalisation
/// cost.
fn refine(graph: &Graph, cells: &mut [u32], scratch: &mut RefineScratch) {
    let n = cells.len();
    let mut cell_count = cells.iter().copied().max().map_or(0, |m| m as usize + 1);
    let RefineScratch {
        sig_data,
        sig_start,
        order,
        next,
    } = scratch;
    order.clear();
    order.extend(0..n);
    next.clear();
    next.resize(n, 0);
    loop {
        sig_data.clear();
        sig_start.clear();
        for v in 0..n {
            sig_start.push(sig_data.len());
            let from = sig_data.len();
            sig_data.extend(graph.neighbors(NodeId::from(v)).map(|u| cells[u.index()]));
            sig_data[from..].sort_unstable();
        }
        sig_start.push(sig_data.len());
        let sig = |v: usize| (cells[v], &sig_data[sig_start[v]..sig_start[v + 1]]);
        order.sort_by(|&a, &b| sig(a).cmp(&sig(b)));
        let mut rank = 0u32;
        for i in 0..n {
            if i > 0 && sig(order[i]) != sig(order[i - 1]) {
                rank += 1;
            }
            next[order[i]] = rank;
        }
        cells.copy_from_slice(next);
        let next_count = rank as usize + 1;
        if next_count == cell_count || next_count == n {
            return;
        }
        cell_count = next_count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::iso::{are_centered_isomorphic, are_isomorphic, wl_hash};

    fn uniform(n: usize) -> Vec<u64> {
        vec![0; n]
    }

    #[test]
    fn empty_graph_has_a_code() {
        let g = Graph::new();
        assert_eq!(canonical_code(&g, &[]), canonical_code(&g, &[]));
    }

    #[test]
    fn code_is_invariant_under_relabelling() {
        let g = generators::grid(3, 4);
        let n = g.node_count();
        let perm: Vec<usize> = (0..n).rev().collect();
        let h = g.relabel(&perm).unwrap();
        assert_eq!(
            canonical_code(&g, &uniform(n)),
            canonical_code(&h, &uniform(n))
        );
    }

    #[test]
    fn code_separates_cycle_lengths() {
        assert_ne!(
            canonical_code(&generators::cycle(6), &uniform(6)),
            canonical_code(&generators::cycle(7), &uniform(7))
        );
    }

    #[test]
    fn code_separates_c6_from_two_triangles_where_wl_cannot() {
        // C6 vs C3 ∪ C3: same size, same degree sequence, and colour
        // refinement never distinguishes them — wl_hash collides.
        let c6 = generators::cycle(6);
        let (two_c3, _) = generators::cycle(3).disjoint_union(&generators::cycle(3));
        assert_eq!(wl_hash(&c6, &uniform(6)), wl_hash(&two_c3, &uniform(6)));
        assert!(!are_isomorphic(&c6, &two_c3));
        // The canonical code is a total invariant: it must separate them.
        assert_ne!(
            canonical_code(&c6, &uniform(6)),
            canonical_code(&two_c3, &uniform(6))
        );
    }

    #[test]
    fn colors_refine_the_code() {
        let g = generators::cycle(4);
        let a = canonical_code(&g, &[1, 2, 1, 2]);
        let b = canonical_code(&g, &[2, 1, 2, 1]);
        let c = canonical_code(&g, &[1, 1, 2, 2]);
        // Alternating colourings are isomorphic to each other but not to the
        // adjacent-equal colouring.
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn centre_position_matters() {
        let p = generators::path(3);
        let end = centered_canonical_code(&p, NodeId(0), &uniform(3));
        let mid = centered_canonical_code(&p, NodeId(1), &uniform(3));
        let other_end = centered_canonical_code(&p, NodeId(2), &uniform(3));
        assert_ne!(end, mid);
        assert_eq!(end, other_end);
    }

    #[test]
    fn tree_and_search_paths_are_each_invariant_on_trees() {
        // The two paths may pick different (equally canonical) labellings,
        // which is safe because `is_tree` is isomorphism-invariant: a pair
        // of isomorphic graphs always dispatches to the same path.  Each
        // path must be invariant under relabelling on its own.
        let t = generators::path(7);
        let n = t.node_count();
        let colors: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        let perm: Vec<usize> = (0..n).rev().collect();
        let relabeled = t.relabel(&perm).unwrap();
        let mut relabeled_colors = vec![0u64; n];
        for old in 0..n {
            relabeled_colors[perm[old]] = colors[old];
        }
        for center in [None, Some(3usize)] {
            let (ca, cb) = match center {
                None => (None, None),
                Some(c) => (Some(NodeId::from(c)), Some(NodeId::from(perm[c]))),
            };
            assert_eq!(
                tree_code(&t, ca, &colors),
                tree_code(&relabeled, cb, &relabeled_colors)
            );
            assert_eq!(
                search_code(&t, ca, &colors),
                search_code(&relabeled, cb, &relabeled_colors)
            );
        }
    }

    #[test]
    fn complete_graphs_stay_fast_and_distinct() {
        // K_10 without the interchangeability prune would branch 10! times.
        let k10 = generators::complete(10);
        let k9 = generators::complete(9);
        let code10 = canonical_code(&k10, &uniform(10));
        assert_ne!(code10, canonical_code(&k9, &uniform(9)));
        assert_eq!(code10, canonical_code(&k10, &uniform(10)));
    }

    #[test]
    fn centered_codes_match_centered_isomorphism_on_small_graphs() {
        // Exhaustive-ish differential check against the backtracking oracle
        // on a handful of structured graphs and all centre pairs.
        let graphs = [
            generators::cycle(5),
            generators::path(5),
            generators::star(4),
            generators::grid(2, 3),
            generators::complete(4),
        ];
        for g in &graphs {
            for h in &graphs {
                for cg in g.nodes() {
                    for ch in h.nodes() {
                        let same = centered_canonical_code(g, cg, &uniform(g.node_count()))
                            == centered_canonical_code(h, ch, &uniform(h.node_count()));
                        let iso = are_centered_isomorphic(g, cg, h, ch);
                        assert_eq!(same, iso, "graphs {g:?} @{cg} vs {h:?} @{ch}");
                    }
                }
            }
        }
    }

    #[test]
    fn tagged_codes_differ_from_untagged() {
        let g = generators::cycle(4);
        let base = canonical_code(&g, &uniform(4));
        let tagged = base.clone().with_tag(2);
        assert_ne!(base, tagged);
        assert_eq!(tagged.as_slice().len(), base.as_slice().len() + 1);
        assert_eq!(tagged.as_slice()[base.as_slice().len()], 2);
    }

    #[test]
    fn public_entry_points_dispatch_on_the_64_node_boundary() {
        // 63- and 64-node graphs run on the bitset kernel; 65 nodes fall
        // back — and both sides of the seam agree with the oracle bytes.
        // (Counter is thread-local, so parallel test threads cannot race it.)
        if crate::fastcanon::fallback_forced() {
            return;
        }
        for (n, kernel_delta) in [(63usize, 1u64), (64, 1), (65, 0)] {
            let g = generators::path(n);
            let before = crate::fastcanon::thread_kernel_calls();
            let dispatched = centered_canonical_code(&g, NodeId(1), &uniform(n));
            assert_eq!(
                crate::fastcanon::thread_kernel_calls(),
                before + kernel_delta,
                "{n}-node dispatch"
            );
            assert_eq!(
                dispatched,
                centered_canonical_code_oracle(&g, NodeId(1), &uniform(n)),
                "{n}-node code must match the oracle bytes"
            );
        }
    }

    #[test]
    fn single_node_and_disconnected_graphs_are_handled() {
        let single = Graph::with_nodes(1);
        assert_eq!(canonical_code(&single, &[7]), canonical_code(&single, &[7]));
        let pair = Graph::with_nodes(2);
        let also_pair = Graph::with_nodes(2);
        assert_eq!(
            canonical_code(&pair, &[1, 2]),
            canonical_code(&also_pair, &[2, 1])
        );
        assert_ne!(
            canonical_code(&pair, &[1, 2]),
            canonical_code(&pair, &[1, 1])
        );
    }
}
