//! Port numberings and edge orientations (the PO model of the related-work
//! discussion).
//!
//! The paper compares the Id-oblivious model against the stronger OI
//! (order-invariant) and PO (port numbering + orientation) models.  We ship a
//! small PO substrate so the crate can express those baselines and so the
//! experiment suite can demonstrate the classical PO-impossible tasks the
//! paper mentions (orienting the edges; 2-colouring a 1-regular graph).

use crate::graph::{Graph, NodeId};
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// A port numbering: every node numbers its incident edges `0..deg(v)`.
///
/// Stored as, for each node, the list of neighbours ordered by port number.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortNumbering {
    ports: Vec<Vec<NodeId>>,
}

impl PortNumbering {
    /// The canonical port numbering: ports follow increasing neighbour id.
    pub fn canonical(graph: &Graph) -> Self {
        let ports = graph
            .nodes()
            .map(|v| graph.neighbors(v).collect::<Vec<_>>())
            .collect();
        PortNumbering { ports }
    }

    /// Builds a port numbering from an explicit neighbour ordering per node.
    ///
    /// # Errors
    ///
    /// Returns an error if the ordering of some node is not a permutation of
    /// its neighbourhood in `graph`.
    pub fn from_orderings(graph: &Graph, orderings: Vec<Vec<NodeId>>) -> Result<Self> {
        if orderings.len() != graph.node_count() {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "expected {} orderings, got {}",
                    graph.node_count(),
                    orderings.len()
                ),
            });
        }
        for (v, order) in orderings.iter().enumerate() {
            let mut expected: Vec<NodeId> = graph.neighbors(NodeId::from(v)).collect();
            let mut got = order.clone();
            expected.sort_unstable();
            got.sort_unstable();
            if expected != got {
                return Err(GraphError::InvalidParameter {
                    reason: format!(
                        "ordering of node {v} is not a permutation of its neighbourhood"
                    ),
                });
            }
        }
        Ok(PortNumbering { ports: orderings })
    }

    /// Number of ports (degree) of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.ports[v.index()].len()
    }

    /// The neighbour reached through port `port` of node `v`, if any.
    pub fn neighbor(&self, v: NodeId, port: usize) -> Option<NodeId> {
        self.ports.get(v.index()).and_then(|p| p.get(port)).copied()
    }

    /// The port of `v` that leads to `u`, if they are adjacent.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<usize> {
        self.ports
            .get(v.index())
            .and_then(|p| p.iter().position(|&w| w == u))
    }
}

/// An orientation assigns a direction to every edge of a graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Orientation {
    /// Directed edges `(tail, head)`, one per undirected edge, sorted.
    arcs: Vec<(NodeId, NodeId)>,
}

impl Orientation {
    /// Orients every edge from its smaller endpoint to its larger endpoint.
    pub fn from_lower_to_higher(graph: &Graph) -> Self {
        let arcs = graph.edges().collect();
        Orientation { arcs }
    }

    /// Builds an orientation from explicit arcs.
    ///
    /// # Errors
    ///
    /// Returns an error unless the arcs orient each edge of `graph` exactly
    /// once.
    pub fn from_arcs(graph: &Graph, arcs: Vec<(NodeId, NodeId)>) -> Result<Self> {
        if arcs.len() != graph.edge_count() {
            return Err(GraphError::InvalidParameter {
                reason: format!("expected {} arcs, got {}", graph.edge_count(), arcs.len()),
            });
        }
        let mut seen: Vec<(NodeId, NodeId)> = Vec::with_capacity(arcs.len());
        for &(u, v) in &arcs {
            if !graph.has_edge(u, v) {
                return Err(GraphError::InvalidParameter {
                    reason: format!("arc ({u}, {v}) does not correspond to an edge"),
                });
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.contains(&key) {
                return Err(GraphError::InvalidParameter {
                    reason: format!("edge {{{u}, {v}}} oriented twice"),
                });
            }
            seen.push(key);
        }
        let mut arcs = arcs;
        arcs.sort_unstable();
        Ok(Orientation { arcs })
    }

    /// All arcs `(tail, head)`.
    pub fn arcs(&self) -> &[(NodeId, NodeId)] {
        &self.arcs
    }

    /// Returns `true` if the edge `{u, v}` is oriented from `u` to `v`.
    pub fn is_oriented(&self, u: NodeId, v: NodeId) -> bool {
        self.arcs.binary_search(&(u, v)).is_ok()
    }

    /// Out-degree of `v` under this orientation.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.arcs.iter().filter(|&&(tail, _)| tail == v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn canonical_ports_follow_neighbor_order() {
        let g = generators::star(3);
        let p = PortNumbering::canonical(&g);
        assert_eq!(p.degree(NodeId(0)), 3);
        assert_eq!(p.neighbor(NodeId(0), 0), Some(NodeId(1)));
        assert_eq!(p.neighbor(NodeId(0), 2), Some(NodeId(3)));
        assert_eq!(p.neighbor(NodeId(0), 3), None);
        assert_eq!(p.port_to(NodeId(1), NodeId(0)), Some(0));
    }

    #[test]
    fn from_orderings_validates_permutations() {
        let g = generators::path(3);
        let ok = PortNumbering::from_orderings(
            &g,
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(0)], vec![NodeId(1)]],
        );
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().neighbor(NodeId(1), 0), Some(NodeId(2)));

        let bad = PortNumbering::from_orderings(
            &g,
            vec![vec![NodeId(1)], vec![NodeId(0)], vec![NodeId(1)]],
        );
        assert!(bad.is_err());
        let wrong_len = PortNumbering::from_orderings(&g, vec![vec![NodeId(1)]]);
        assert!(wrong_len.is_err());
    }

    #[test]
    fn lower_to_higher_orientation() {
        let g = generators::cycle(4);
        let o = Orientation::from_lower_to_higher(&g);
        assert_eq!(o.arcs().len(), 4);
        assert!(o.is_oriented(NodeId(0), NodeId(1)));
        assert!(!o.is_oriented(NodeId(1), NodeId(0)));
        assert_eq!(o.out_degree(NodeId(0)), 2);
    }

    #[test]
    fn from_arcs_validation() {
        let g = generators::path(3);
        let ok = Orientation::from_arcs(&g, vec![(NodeId(1), NodeId(0)), (NodeId(1), NodeId(2))]);
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().out_degree(NodeId(1)), 2);

        let not_edge =
            Orientation::from_arcs(&g, vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]);
        assert!(not_edge.is_err());
        let doubled =
            Orientation::from_arcs(&g, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
        assert!(doubled.is_err());
        let wrong_count = Orientation::from_arcs(&g, vec![(NodeId(0), NodeId(1))]);
        assert!(wrong_count.is_err());
    }
}
