//! Error type for graph construction and manipulation.

use std::fmt;

/// Errors produced by graph construction and queries.
///
/// The graph substrate enforces the paper's input conventions eagerly: graphs
/// are **simple** (no self-loops, no parallel edges) and all node references
/// must be in range.  Violations surface as a [`GraphError`] rather than a
/// panic so that instance generators and property checkers can propagate
/// malformed-input conditions with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was used that does not exist in the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was requested; the paper's graphs are simple.
    SelfLoop {
        /// The node on which the self-loop was requested.
        node: usize,
    },
    /// A duplicate edge was added where the operation forbids it.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// A label vector did not match the number of nodes of the graph.
    LabelCountMismatch {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// An operation required a connected graph but the input was disconnected.
    Disconnected,
    /// An operation required a non-empty graph.
    EmptyGraph,
    /// A generator was asked for an instance with inconsistent parameters.
    InvalidParameter {
        /// Human-readable description of the parameter problem.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node index {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop on node {node} is not allowed in a simple graph"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already present")
            }
            GraphError::LabelCountMismatch { nodes, labels } => {
                write!(f, "label count {labels} does not match node count {nodes}")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = vec![
            GraphError::NodeOutOfRange {
                node: 3,
                node_count: 2,
            },
            GraphError::SelfLoop { node: 1 },
            GraphError::DuplicateEdge { u: 0, v: 1 },
            GraphError::LabelCountMismatch {
                nodes: 4,
                labels: 2,
            },
            GraphError::Disconnected,
            GraphError::EmptyGraph,
            GraphError::InvalidParameter {
                reason: "depth must be positive".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                s.chars().next().unwrap().is_lowercase() || s.chars().next().unwrap().is_numeric()
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
