//! Breadth-first traversal, distances, connectivity and related queries.
//!
//! The LOCAL model's radius-`t` view is defined through graph distance, so
//! everything in the simulator ultimately reduces to the BFS primitives in
//! this module.

use crate::graph::{Graph, NodeId};
use crate::{GraphError, Result};
use std::collections::VecDeque;

/// Distance labelling produced by a breadth-first search.
///
/// `dist[v] == None` means `v` is unreachable from the source set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distances {
    dist: Vec<Option<usize>>,
}

impl Distances {
    /// Distance to `v`, or `None` if unreachable.
    pub fn get(&self, v: NodeId) -> Option<usize> {
        self.dist.get(v.index()).copied().flatten()
    }

    /// Iterator over `(node, distance)` pairs of reachable nodes in
    /// increasing node order.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (NodeId::from(i), d)))
    }

    /// Largest finite distance (the eccentricity of the source set), or
    /// `None` for an empty source set on an empty graph.
    pub fn eccentricity(&self) -> Option<usize> {
        self.dist.iter().flatten().copied().max()
    }

    /// Number of reachable nodes (including the sources themselves).
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().flatten().count()
    }
}

impl Graph {
    /// Breadth-first distances from a single source.
    ///
    /// # Errors
    ///
    /// Returns an error if `source` is out of range.
    pub fn bfs_distances(&self, source: NodeId) -> Result<Distances> {
        self.bfs_distances_multi(&[source])
    }

    /// Breadth-first distances from a set of sources (distance to the nearest
    /// source).
    ///
    /// # Errors
    ///
    /// Returns an error if any source is out of range.
    pub fn bfs_distances_multi(&self, sources: &[NodeId]) -> Result<Distances> {
        let mut dist = vec![None; self.node_count()];
        let mut queue = VecDeque::new();
        for &s in sources {
            self.check_node(s)?;
            if dist[s.index()].is_none() {
                dist[s.index()] = Some(0);
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued node has a distance");
            for v in self.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        Ok(Distances { dist })
    }

    /// Shortest-path distance between `u` and `v`, or `None` if disconnected.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is out of range.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Result<Option<usize>> {
        self.check_node(v)?;
        Ok(self.bfs_distances(u)?.get(v))
    }

    /// Returns the nodes within distance `radius` of `center`, sorted by
    /// (distance, node id).
    ///
    /// # Errors
    ///
    /// Returns an error if `center` is out of range.
    pub fn nodes_within(&self, center: NodeId, radius: usize) -> Result<Vec<NodeId>> {
        let distances = self.bfs_distances(center)?;
        let mut nodes: Vec<(usize, NodeId)> = distances
            .reachable()
            .filter(|&(_, d)| d <= radius)
            .map(|(v, d)| (d, v))
            .collect();
        nodes.sort_unstable();
        Ok(nodes.into_iter().map(|(_, v)| v).collect())
    }

    /// Returns `true` if the graph is connected.  The empty graph is
    /// considered connected (there is no pair of separated nodes), matching
    /// the paper's convention that inputs are connected graphs.
    pub fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        let distances = self
            .bfs_distances(NodeId(0))
            .expect("node 0 exists in a non-empty graph");
        distances.reachable_count() == self.node_count()
    }

    /// Returns the connected components as sorted lists of nodes, ordered by
    /// their smallest node.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.node_count()];
        let mut components = Vec::new();
        for start in self.nodes() {
            if seen[start.index()] {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start.index()] = true;
            while let Some(u) = queue.pop_front() {
                component.push(u);
                for v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        queue.push_back(v);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Diameter of a connected graph (the largest pairwise distance).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] for the empty graph and
    /// [`GraphError::Disconnected`] for disconnected graphs.
    pub fn diameter(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let mut best = 0;
        for v in self.nodes() {
            let d = self.bfs_distances(v)?;
            if d.reachable_count() != self.node_count() {
                return Err(GraphError::Disconnected);
            }
            best = best.max(d.eccentricity().unwrap_or(0));
        }
        Ok(best)
    }

    /// Returns `true` if the graph contains no cycle (i.e. it is a forest).
    pub fn is_forest(&self) -> bool {
        // A forest with c components on n nodes has exactly n - c edges.
        let components = self.connected_components().len();
        self.edge_count() + components == self.node_count() || self.is_empty()
    }

    /// Returns `true` if the graph is a tree: connected and acyclic.
    pub fn is_tree(&self) -> bool {
        !self.is_empty() && self.is_connected() && self.edge_count() + 1 == self.node_count()
    }

    /// Returns `true` if every node has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        self.nodes().all(|v| self.adjacency_len(v) == d)
    }

    fn adjacency_len(&self, v: NodeId) -> usize {
        self.degree(v).expect("node from self.nodes() is in range")
    }

    /// Returns `true` if `nodes` is an independent set (no two adjacent).
    pub fn is_independent_set(&self, nodes: &[NodeId]) -> bool {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if `nodes` is a *maximal* independent set: independent
    /// and every node outside the set has a neighbour inside it.
    pub fn is_maximal_independent_set(&self, nodes: &[NodeId]) -> bool {
        if !self.is_independent_set(nodes) {
            return false;
        }
        let in_set: Vec<bool> = {
            let mut marks = vec![false; self.node_count()];
            for &v in nodes {
                if v.index() >= marks.len() {
                    return false;
                }
                marks[v.index()] = true;
            }
            marks
        };
        self.nodes()
            .all(|v| in_set[v.index()] || self.neighbors(v).any(|u| in_set[u.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_a_path() {
        let g = generators::path(5);
        let d = g.bfs_distances(NodeId(0)).unwrap();
        assert_eq!(d.get(NodeId(4)), Some(4));
        assert_eq!(d.eccentricity(), Some(4));
        assert_eq!(d.reachable_count(), 5);
    }

    #[test]
    fn multi_source_bfs_takes_nearest_source() {
        let g = generators::path(7);
        let d = g.bfs_distances_multi(&[NodeId(0), NodeId(6)]).unwrap();
        assert_eq!(d.get(NodeId(3)), Some(3));
        assert_eq!(d.get(NodeId(5)), Some(1));
    }

    #[test]
    fn distance_none_between_components() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.distance(NodeId(0), NodeId(3)).unwrap(), None);
        assert!(!g.is_connected());
        assert_eq!(g.connected_components().len(), 2);
    }

    #[test]
    fn nodes_within_radius_on_cycle() {
        let g = generators::cycle(10);
        let ball = g.nodes_within(NodeId(0), 2).unwrap();
        assert_eq!(ball.len(), 5);
        assert!(ball.contains(&NodeId(8)));
        assert!(ball.contains(&NodeId(2)));
    }

    #[test]
    fn diameter_of_cycle_and_path() {
        assert_eq!(generators::cycle(8).diameter().unwrap(), 4);
        assert_eq!(generators::cycle(9).diameter().unwrap(), 4);
        assert_eq!(generators::path(6).diameter().unwrap(), 5);
    }

    #[test]
    fn diameter_errors() {
        assert_eq!(Graph::new().diameter(), Err(GraphError::EmptyGraph));
        let disconnected = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(disconnected.diameter(), Err(GraphError::Disconnected));
    }

    #[test]
    fn tree_and_forest_classification() {
        assert!(generators::path(5).is_tree());
        assert!(generators::path(5).is_forest());
        assert!(!generators::cycle(5).is_tree());
        assert!(!generators::cycle(5).is_forest());
        let forest = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(forest.is_forest());
        assert!(!forest.is_tree());
    }

    #[test]
    fn regularity_check() {
        assert!(generators::cycle(6).is_regular(2));
        assert!(!generators::path(6).is_regular(2));
        assert!(generators::complete(4).is_regular(3));
    }

    #[test]
    fn independent_set_checks() {
        let g = generators::cycle(6);
        let mis = vec![NodeId(0), NodeId(2), NodeId(4)];
        assert!(g.is_independent_set(&mis));
        assert!(g.is_maximal_independent_set(&mis));
        let not_maximal = vec![NodeId(0), NodeId(2)];
        assert!(g.is_independent_set(&not_maximal));
        assert!(!g.is_maximal_independent_set(&not_maximal));
        let not_independent = vec![NodeId(0), NodeId(1)];
        assert!(!g.is_independent_set(&not_independent));
    }

    #[test]
    fn empty_and_singleton_graphs_are_connected() {
        assert!(Graph::new().is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }
}
