//! Graph substrate for the *local decision* reproduction of
//! Fraigniaud, Göös, Korman and Suomela, *"What can be decided locally
//! without identifiers?"* (PODC 2013).
//!
//! The paper's constructions are all concrete families of **simple
//! undirected labelled graphs**: cycles, layered binary trees, Turing-machine
//! execution grids, and layered quadtree pyramids.  The LOCAL model on top of
//! them needs exactly three graph-theoretic services:
//!
//! 1. building and inspecting graphs ([`Graph`], [`LabeledGraph`]),
//! 2. extracting the radius-`t` ball `B(v, t)` around a node ([`Ball`],
//!    [`Graph::ball`]) — this is the "view" a constant-time distributed
//!    algorithm sees.  Bulk consumers use a [`BallExtractor`], which
//!    amortises scratch across extractions, *extends* a ball from radius
//!    to radius without re-traversing
//!    ([`BallExtractor::extend_current`]), and enforces node caps
//!    mid-BFS ([`BallExtractor::extract_within`]) so radius-3 sweeps stay
//!    inside explicit work budgets, and
//! 3. comparing such views up to (label-preserving, centre-preserving)
//!    isomorphism so that *indistinguishability* arguments can be executed
//!    mechanically — exactly via the backtracking tests in [`iso`], and in
//!    bulk via the total canonical codes in [`canon`] (equal code ⇔
//!    isomorphic view), which turn deduplication into hash-set insertion.
//!    Balls of at most 64 nodes — every ball the paper's sweeps produce —
//!    are canonicalised by the word-parallel bitset kernel in
//!    [`fastcanon`], which emits byte-identical codes from `u64` adjacency
//!    rows and a reusable [`CanonScratch`]; the original path remains the
//!    differential oracle ([`canon::canonical_code_oracle`]) and the
//!    fallback for larger graphs (or for every graph when
//!    `LD_CANON_FALLBACK=1` is set).
//!
//! The crate also ships deterministic [`generators`] for every graph family
//! used by the paper, plus [`ports`] (port numberings and orientations) for
//! the related PO model discussed in the paper's related-work section.
//!
//! # Example
//!
//! ```
//! use ld_graph::{generators, Graph};
//!
//! let cycle: Graph = generators::cycle(8);
//! assert_eq!(cycle.node_count(), 8);
//! assert_eq!(cycle.edge_count(), 8);
//! assert!(cycle.is_connected());
//!
//! // The radius-2 ball around node 0 in an 8-cycle is a path on 5 nodes.
//! let ball = cycle.ball(ld_graph::NodeId(0), 2);
//! assert_eq!(ball.graph().node_count(), 5);
//! assert_eq!(ball.graph().edge_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ball;
pub mod canon;
pub mod error;
pub mod fastcanon;
pub mod generators;
pub mod graph;
pub mod iso;
pub mod labeled;
pub mod ports;
pub mod traversal;

pub use ball::{Ball, BallExtractor};
pub use canon::{canonical_code, centered_canonical_code, CanonicalCode};
pub use error::GraphError;
pub use fastcanon::CanonScratch;
pub use graph::{EdgeIter, Graph, NeighborIter, NodeId};
pub use labeled::LabeledGraph;
pub use ports::{Orientation, PortNumbering};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
