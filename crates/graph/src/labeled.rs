//! Labelled graphs `(G, x)`: a graph together with a local input `x(v)` per
//! node, exactly as in Section 1.2 of the paper.

use crate::graph::{Graph, NodeId};
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// A labelled graph `(G, x)` where each node `v` carries a local input
/// `x(v)` of type `L`.
///
/// Labelled graph *properties* (collections of labelled graphs closed under
/// isomorphism) are defined in the `ld-local` crate; this type is only the
/// carrier.
///
/// # Example
///
/// ```
/// use ld_graph::{generators, LabeledGraph};
///
/// // A 2-coloured 4-cycle.
/// let g = generators::cycle(4);
/// let lg = LabeledGraph::new(g, vec![0u8, 1, 0, 1])?;
/// assert_eq!(*lg.label(ld_graph::NodeId(2)), 0);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledGraph<L> {
    graph: Graph,
    labels: Vec<L>,
}

impl<L> LabeledGraph<L> {
    /// Wraps a graph with one label per node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LabelCountMismatch`] if `labels.len()` differs
    /// from the number of nodes.
    pub fn new(graph: Graph, labels: Vec<L>) -> Result<Self> {
        if graph.node_count() != labels.len() {
            return Err(GraphError::LabelCountMismatch {
                nodes: graph.node_count(),
                labels: labels.len(),
            });
        }
        Ok(LabeledGraph { graph, labels })
    }

    /// Labels every node with the same (cloned) label.
    pub fn uniform(graph: Graph, label: L) -> Self
    where
        L: Clone,
    {
        let labels = vec![label; graph.node_count()];
        LabeledGraph { graph, labels }
    }

    /// Labels node `v` by calling `f(v)`.
    pub fn from_fn(graph: Graph, mut f: impl FnMut(NodeId) -> L) -> Self {
        let labels = graph.nodes().map(&mut f).collect();
        LabeledGraph { graph, labels }
    }

    /// The underlying unlabelled graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &L {
        &self.labels[v.index()]
    }

    /// The label of node `v`, or `None` if out of range.
    pub fn get_label(&self, v: NodeId) -> Option<&L> {
        self.labels.get(v.index())
    }

    /// All labels in node order.
    pub fn labels(&self) -> &[L] {
        &self.labels
    }

    /// Mutable access to the label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_mut(&mut self, v: NodeId) -> &mut L {
        &mut self.labels[v.index()]
    }

    /// Number of nodes (same as the underlying graph).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Iterator over `(node, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &L)> {
        self.graph
            .nodes()
            .map(move |v| (v, &self.labels[v.index()]))
    }

    /// Applies `f` to every label, producing a relabelled copy of the same
    /// graph.
    pub fn map_labels<M>(&self, mut f: impl FnMut(NodeId, &L) -> M) -> LabeledGraph<M> {
        LabeledGraph {
            graph: self.graph.clone(),
            labels: self
                .graph
                .nodes()
                .map(|v| f(v, &self.labels[v.index()]))
                .collect(),
        }
    }

    /// Destructures into the graph and the label vector.
    pub fn into_parts(self) -> (Graph, Vec<L>) {
        (self.graph, self.labels)
    }

    /// Induced labelled subgraph on `nodes` (labels cloned), together with
    /// the mapping from new ids to original ids.
    ///
    /// # Errors
    ///
    /// Returns an error if any node is out of range.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<(LabeledGraph<L>, Vec<NodeId>)>
    where
        L: Clone,
    {
        let (sub, mapping) = self.graph.induced_subgraph(nodes)?;
        let labels = mapping
            .iter()
            .map(|&v| self.labels[v.index()].clone())
            .collect();
        Ok((LabeledGraph { graph: sub, labels }, mapping))
    }

    /// Disjoint union of two labelled graphs; returns the offset of the
    /// second graph's nodes.
    pub fn disjoint_union(&self, other: &LabeledGraph<L>) -> (LabeledGraph<L>, usize)
    where
        L: Clone,
    {
        let (graph, offset) = self.graph.disjoint_union(&other.graph);
        let mut labels = self.labels.clone();
        labels.extend(other.labels.iter().cloned());
        (LabeledGraph { graph, labels }, offset)
    }
}

impl<L> AsRef<Graph> for LabeledGraph<L> {
    fn as_ref(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn new_rejects_wrong_label_count() {
        let g = generators::cycle(4);
        assert!(matches!(
            LabeledGraph::new(g, vec![1u8, 2]),
            Err(GraphError::LabelCountMismatch {
                nodes: 4,
                labels: 2
            })
        ));
    }

    #[test]
    fn uniform_and_from_fn_labels() {
        let g = generators::path(3);
        let lg = LabeledGraph::uniform(g.clone(), "x");
        assert!(lg.iter().all(|(_, l)| *l == "x"));
        let lg2 = LabeledGraph::from_fn(g, |v| v.index() * 10);
        assert_eq!(*lg2.label(NodeId(2)), 20);
    }

    #[test]
    fn map_labels_preserves_structure() {
        let g = generators::cycle(5);
        let lg = LabeledGraph::from_fn(g, super::super::graph::NodeId::index);
        let doubled = lg.map_labels(|_, &l| l * 2);
        assert_eq!(doubled.graph().edge_count(), 5);
        assert_eq!(*doubled.label(NodeId(3)), 6);
    }

    #[test]
    fn induced_subgraph_carries_labels() {
        let g = generators::path(4);
        let lg = LabeledGraph::new(g, vec!['a', 'b', 'c', 'd']).unwrap();
        let (sub, mapping) = lg.induced_subgraph(&[NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(sub.labels(), &['b', 'c']);
        assert_eq!(mapping, vec![NodeId(1), NodeId(2)]);
        assert_eq!(sub.graph().edge_count(), 1);
    }

    #[test]
    fn disjoint_union_concatenates_labels() {
        let a = LabeledGraph::uniform(generators::path(2), 1u32);
        let b = LabeledGraph::uniform(generators::path(3), 2u32);
        let (u, offset) = a.disjoint_union(&b);
        assert_eq!(offset, 2);
        assert_eq!(u.labels(), &[1, 1, 2, 2, 2]);
        assert_eq!(u.graph().edge_count(), 3);
    }

    #[test]
    fn label_mut_and_get_label() {
        let mut lg = LabeledGraph::uniform(generators::path(2), 0u8);
        *lg.label_mut(NodeId(1)) = 9;
        assert_eq!(lg.get_label(NodeId(1)), Some(&9));
        assert_eq!(lg.get_label(NodeId(7)), None);
    }

    #[test]
    fn into_parts_roundtrip() {
        let lg = LabeledGraph::uniform(generators::cycle(3), 7u8);
        let (g, labels) = lg.into_parts();
        assert_eq!(g.node_count(), labels.len());
    }
}
