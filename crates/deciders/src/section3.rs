//! Deciders for the Section 3 construction (computability).

use ld_constructions::fragments::FragmentSource;
use ld_constructions::section3::{
    build_gmr, neighborhood_generator, promise::MachineLabel, Section3Label,
};

use ld_local::ObliviousView;
use ld_local::{decision, IdAssignment, Input, LocalAlgorithm, ObliviousAlgorithm, Verdict, View};
use ld_turing::{zoo::MachineSpec, RunOutcome, Symbol, TuringMachine};

/// The two-stage identifier-reading decider of Theorem 2 (`P ∈ LD` under
/// (C)).
///
/// Stage 1 is the local structural test (property (P2)); here it checks that
/// every visible node announces the same `(M, r)` and that the mod-3
/// orientation of neighbouring cells is consistent (the full Appendix A
/// verifier is approximated — the exact global membership test lives in
/// `ld_constructions::section3::GmrOutputsZeroProperty`).
///
/// Stage 2 simulates `M` for `Id(v)` steps (capped at `fuel_cap` so that the
/// experiments terminate; the cap plays the role of the unbounded identifier
/// magnitude of the paper).  If the simulation finishes and the output is
/// not 0, the node rejects.
#[derive(Debug, Clone)]
pub struct TwoStageIdDecider {
    fuel_cap: u64,
}

impl TwoStageIdDecider {
    /// Creates the decider with the given simulation cap.
    pub fn new(fuel_cap: u64) -> Self {
        TwoStageIdDecider { fuel_cap }
    }

    fn structure_ok(view: &View<Section3Label>) -> bool {
        // Stage 1 (pragmatic subset of (P2)): every visible node announces
        // the same machine and locality parameter, and the mod-3 coordinates
        // are in range.  The exact global structure test is
        // `ld_constructions::section3::GmrOutputsZeroProperty`.
        let center = view.center_label();
        view.graph().nodes().all(|v| {
            let l = view.label(v);
            l.machine == center.machine && l.r == center.r && l.x_mod3 < 3 && l.y_mod3 < 3
        })
    }
}

impl LocalAlgorithm<Section3Label> for TwoStageIdDecider {
    fn name(&self) -> &str {
        "section3-two-stage-id-decider"
    }

    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, view: &View<Section3Label>) -> Verdict {
        if !Self::structure_ok(view) {
            return Verdict::No;
        }
        let budget = view.center_id().min(self.fuel_cap);
        match view.center_label().machine.run(budget) {
            RunOutcome::Halted(halt) if halt.output != Symbol(0) => Verdict::No,
            _ => Verdict::Yes,
        }
    }
}

/// A fuel-bounded Id-oblivious candidate decider: simulate `M` for a fixed
/// number of steps and reject when it is seen to halt with a non-zero
/// output.
///
/// Without identifiers there is no instance-dependent handle on `M`'s
/// running time, so for every fixed fuel there is a machine in `L₁` that the
/// candidate wrongly accepts — the executable face of `P ∉ LD*`.
#[derive(Debug, Clone)]
pub struct FuelBoundedObliviousCandidate {
    name: String,
    fuel: u64,
}

impl FuelBoundedObliviousCandidate {
    /// Creates the candidate with the given fixed simulation fuel.
    pub fn new(fuel: u64) -> Self {
        FuelBoundedObliviousCandidate {
            name: format!("oblivious-fuel-{fuel}"),
            fuel,
        }
    }

    /// The fixed fuel budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }
}

impl ObliviousAlgorithm<Section3Label> for FuelBoundedObliviousCandidate {
    fn name(&self) -> &str {
        &self.name
    }

    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, view: &ObliviousView<Section3Label>) -> Verdict {
        match view.center_label().machine.run(self.fuel) {
            RunOutcome::Halted(halt) if halt.output != Symbol(0) => Verdict::No,
            _ => Verdict::Yes,
        }
    }
}

/// Builds the experiment input for one machine: `G(M, r)` with consecutive
/// identifiers (so some identifier is at least the run time, as guaranteed
/// by property (P1): the table alone has `(s+1)²` nodes).
///
/// # Errors
///
/// Propagates construction errors (in particular when `M` does not halt
/// within `fuel`).
pub fn gmr_input(
    machine: &TuringMachine,
    r: u32,
    fuel: u64,
    source: FragmentSource,
) -> ld_constructions::Result<Input<Section3Label>> {
    let instance = build_gmr(machine, r, fuel, source)?;
    let n = instance.labeled().node_count();
    Input::new(instance.into_labeled(), IdAssignment::consecutive(n))
        .map_err(ld_constructions::ConstructionError::from)
}

/// The paper's separation algorithm `R`: given an Id-oblivious candidate
/// `A*` with horizon `t = r` and a machine `N`, compute the neighbourhood
/// set `B(N, r)` and accept `N` iff `A*` accepts every view in it.
///
/// If `A*` really decided `P`, this procedure would separate `L₀` from `L₁`,
/// which is impossible; [`separation_harness`] exhibits the failure on the
/// machine zoo.
///
/// # Errors
///
/// Propagates construction errors.
pub fn separation_algorithm<A>(
    candidate: &A,
    machine: &TuringMachine,
    r: u32,
    source: FragmentSource,
) -> ld_constructions::Result<bool>
where
    A: ObliviousAlgorithm<Section3Label>,
{
    let views = neighborhood_generator(machine, r, source)?;
    Ok(views.iter().all(|v| candidate.evaluate(v).is_yes()))
}

/// The outcome of running the separation harness on a machine zoo.
#[derive(Debug, Clone, Default)]
pub struct SeparationReport {
    /// Machines in `L₀` wrongly rejected by the candidate-driven separator.
    pub rejected_l0: Vec<String>,
    /// Machines in `L₁` wrongly accepted by the candidate-driven separator.
    pub accepted_l1: Vec<String>,
}

impl SeparationReport {
    /// `true` when the candidate failed to separate the zoo (which Lemma 1
    /// says must happen for every computable candidate once the zoo is rich
    /// enough).
    pub fn candidate_fails(&self) -> bool {
        !self.rejected_l0.is_empty() || !self.accepted_l1.is_empty()
    }
}

/// Runs the separation algorithm over a machine zoo and reports on which
/// machines the candidate-driven separator errs.
///
/// # Errors
///
/// Propagates construction errors.
pub fn separation_harness<A>(
    candidate: &A,
    zoo: &[MachineSpec],
    r: u32,
    source: FragmentSource,
) -> ld_constructions::Result<SeparationReport>
where
    A: ObliviousAlgorithm<Section3Label>,
{
    let mut report = SeparationReport::default();
    for spec in zoo {
        let accepted = separation_algorithm(candidate, &spec.machine, r, source)?;
        if spec.in_l0() && !accepted {
            report.rejected_l0.push(spec.machine.name().to_string());
        }
        if spec.in_l1() && accepted {
            report.accepted_l1.push(spec.machine.name().to_string());
        }
    }
    Ok(report)
}

/// The identifier-reading decider for the Section 3 *promise problem* `R`:
/// simulate `M` for `Id(v)` steps and reject if it halts.  Under the promise
/// (the cycle is at least as long as `M`'s running time) some node has a
/// large enough identifier to finish the simulation.
#[derive(Debug, Clone)]
pub struct PromiseHaltingDecider {
    fuel_cap: u64,
}

impl PromiseHaltingDecider {
    /// Creates the decider with a safety cap on simulation length.
    pub fn new(fuel_cap: u64) -> Self {
        PromiseHaltingDecider { fuel_cap }
    }
}

impl LocalAlgorithm<MachineLabel> for PromiseHaltingDecider {
    fn name(&self) -> &str {
        "section3-promise-id-decider"
    }

    fn radius(&self) -> usize {
        0
    }

    fn evaluate(&self, view: &View<MachineLabel>) -> Verdict {
        let budget = view.center_id().min(self.fuel_cap);
        match view.center_label().machine.run(budget) {
            RunOutcome::Halted(_) => Verdict::No,
            RunOutcome::OutOfFuel(_) => Verdict::Yes,
        }
    }
}

/// Runs the Theorem 2 experiment over a machine zoo: the two-stage decider
/// must accept `G(M, r)` exactly when `M` outputs 0, and every fuel-bounded
/// oblivious candidate must err on some machine whose running time exceeds
/// its fuel.  Returns `(id_decider_correct, failing_candidates)`.
///
/// # Errors
///
/// Propagates construction errors.
pub fn theorem2_experiment(
    zoo: &[MachineSpec],
    r: u32,
    fuel: u64,
    source: FragmentSource,
    candidate_fuels: &[u64],
) -> ld_constructions::Result<(bool, Vec<u64>)> {
    let id_decider = TwoStageIdDecider::new(fuel);
    let mut id_correct = true;
    let halting: Vec<&MachineSpec> = zoo.iter().filter(|s| s.truth.halts()).collect();
    for spec in &halting {
        let input = gmr_input(&spec.machine, r, fuel, source)?;
        let accepted = decision::run_local(&input, &id_decider).accepted();
        if accepted != spec.in_l0() {
            id_correct = false;
        }
    }
    let mut failing = Vec::new();
    for &candidate_fuel in candidate_fuels {
        let candidate = FuelBoundedObliviousCandidate::new(candidate_fuel);
        let mut errs = false;
        for spec in &halting {
            let input = gmr_input(&spec.machine, r, fuel, source)?;
            let accepted = decision::run_oblivious(&input, &candidate).accepted();
            if accepted != spec.in_l0() {
                errs = true;
                break;
            }
        }
        if errs {
            failing.push(candidate_fuel);
        }
    }
    Ok((id_correct, failing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_graph::NodeId;
    use ld_turing::zoo;

    const SOURCE: FragmentSource = FragmentSource::WindowsAndDecoys;

    #[test]
    fn two_stage_decider_is_correct_on_small_zoo() {
        let decider = TwoStageIdDecider::new(10_000);
        for spec in [
            zoo::halts_with_output(2, Symbol(0)),
            zoo::halts_with_output(2, Symbol(1)),
            zoo::halts_with_output(5, Symbol(0)),
            zoo::halts_with_output(5, Symbol(1)),
        ] {
            let input = gmr_input(&spec.machine, 1, 10_000, SOURCE).unwrap();
            let accepted = decision::run_local(&input, &decider).accepted();
            assert_eq!(accepted, spec.in_l0(), "machine {}", spec.machine.name());
        }
    }

    #[test]
    fn rejecting_node_has_a_large_identifier() {
        let spec = zoo::halts_with_output(3, Symbol(1));
        let decider = TwoStageIdDecider::new(10_000);
        let input = gmr_input(&spec.machine, 1, 10_000, SOURCE).unwrap();
        let decision = decision::run_local(&input, &decider);
        assert!(!decision.accepted());
        let steps = spec.truth.steps().unwrap();
        for v in decision.rejecting_nodes() {
            assert!(
                input.id(v) >= steps,
                "node {v} rejected with id {}",
                input.id(v)
            );
        }
    }

    #[test]
    fn structure_stage_rejects_mismatched_labels() {
        let spec_a = zoo::halts_with_output(2, Symbol(0));
        let spec_b = zoo::halts_with_output(3, Symbol(0));
        let decider = TwoStageIdDecider::new(10_000);
        let instance = build_gmr(&spec_a.machine, 1, 100, SOURCE).unwrap();
        let mut corrupted = instance.into_labeled();
        corrupted.label_mut(NodeId(0)).machine = spec_b.machine.clone();
        let n = corrupted.node_count();
        let input = Input::new(corrupted, IdAssignment::consecutive(n)).unwrap();
        assert!(!decision::run_local(&input, &decider).accepted());
    }

    #[test]
    fn fuel_bounded_candidates_fail_on_long_runners() {
        // A candidate with fuel 4 cannot see the halting of a machine that
        // runs for 6 steps, so it wrongly accepts G(M, r) for an L1 machine.
        let long_l1 = zoo::halts_with_output(5, Symbol(1));
        let candidate = FuelBoundedObliviousCandidate::new(4);
        assert_eq!(candidate.fuel(), 4);
        let input = gmr_input(&long_l1.machine, 1, 10_000, SOURCE).unwrap();
        assert!(decision::run_oblivious(&input, &candidate).accepted());
        // Yet the same candidate is fine on short machines — the failure is
        // intrinsically about the missing bound on the running time.
        let short_l1 = zoo::halts_with_output(1, Symbol(1));
        let input = gmr_input(&short_l1.machine, 1, 10_000, SOURCE).unwrap();
        assert!(!decision::run_oblivious(&input, &candidate).accepted());
    }

    #[test]
    fn separation_harness_defeats_every_fuel_bounded_candidate() {
        let zoo_machines = vec![
            zoo::halts_with_output(2, Symbol(0)),
            zoo::halts_with_output(9, Symbol(1)),
        ];
        let candidate = FuelBoundedObliviousCandidate::new(5);
        let report = separation_harness(&candidate, &zoo_machines, 1, SOURCE).unwrap();
        assert!(report.candidate_fails());
        assert!(report
            .accepted_l1
            .contains(&zoo_machines[1].machine.name().to_string()));
    }

    #[test]
    fn separation_algorithm_halts_on_nonhalting_machines() {
        let candidate = FuelBoundedObliviousCandidate::new(5);
        let spec = zoo::infinite_loop();
        // The point of property (P3): the separator halts even here.
        let accepted = separation_algorithm(&candidate, &spec.machine, 1, SOURCE).unwrap();
        assert!(accepted);
    }

    #[test]
    fn theorem2_experiment_summary() {
        let zoo_machines = vec![
            zoo::halts_with_output(1, Symbol(0)),
            zoo::halts_with_output(6, Symbol(1)),
        ];
        let (id_ok, failing) =
            theorem2_experiment(&zoo_machines, 1, 10_000, SOURCE, &[2, 100]).unwrap();
        assert!(id_ok);
        // The fuel-2 candidate misses the 7-step L1 machine; the fuel-100
        // candidate happens to be correct on this tiny zoo.
        assert_eq!(failing, vec![2]);
    }

    #[test]
    fn promise_decider_handles_both_sides() {
        let decider = PromiseHaltingDecider::new(100_000);
        let halting = zoo::halts_with_output(6, Symbol(1));
        let forever = zoo::infinite_loop();
        let no = ld_constructions::section3::promise::instance(&halting.machine, 12).unwrap();
        let yes = ld_constructions::section3::promise::instance(&forever.machine, 12).unwrap();
        let no_input = Input::new(no, IdAssignment::consecutive(12)).unwrap();
        let yes_input = Input::new(yes, IdAssignment::consecutive(12)).unwrap();
        assert!(!decision::run_local(&no_input, &decider).accepted());
        assert!(decision::run_local(&yes_input, &decider).accepted());
    }
}
