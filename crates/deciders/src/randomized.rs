//! Corollary 1: the randomised Id-oblivious decider.
//!
//! An Id-oblivious algorithm cannot learn `n` from identifiers, but each
//! node can privately generate a *large number with decent probability*: it
//! tosses a fair coin until the first head, after `ℓ_v` tosses, and sets
//! `n_v = 4^{ℓ_v}`.  The probability that **no** node reaches `n_v ≥ n` is at
//! most `(1 − 1/√n)^n = o(1)`, so with high probability some node can finish
//! simulating `M` for `n_v` steps — replacing the large identifier of the
//! deterministic Section 3 decider.  This yields a `(1, 1 − o(1))`-decider
//! for the property `P = {G(M, r) : M outputs 0}`.

use ld_constructions::section3::{promise::MachineLabel, Section3Label};
use ld_local::{ObliviousView, RandomizedObliviousAlgorithm, Verdict};
use ld_turing::{RunOutcome, Symbol};
use rand::RngCore;

/// Draws `ℓ` fair-coin tosses until the first head and returns `4^ℓ`
/// (saturating, and capped by `cap`).
pub fn random_budget(rng: &mut dyn RngCore, cap: u64) -> u64 {
    let mut tosses = 0u32;
    // Count tails until the first head.
    while rng.next_u32() & 1 == 0 {
        tosses += 1;
        if tosses >= 32 {
            break;
        }
    }
    4u64.saturating_pow(tosses).min(cap)
}

/// The randomised Id-oblivious decider for the Section 3 property: simulate
/// `M` for a random budget `n_v = 4^{ℓ_v}` steps and reject iff it is seen
/// to halt with a non-zero output.
///
/// * Yes-instances (`M` outputs 0) are accepted with probability 1: no
///   simulation, however long, reveals a non-zero output.
/// * No-instances are rejected with probability `1 − (1 − 1/√n)^n = 1 − o(1)`
///   because some node's budget exceeds `M`'s running time w.h.p.
#[derive(Debug, Clone)]
pub struct RandomizedGmrDecider {
    cap: u64,
}

impl RandomizedGmrDecider {
    /// Creates the decider; `cap` bounds the simulation budget so that
    /// experiments terminate (the paper's decider has no cap, and the cap is
    /// irrelevant as long as it exceeds the running times in the zoo).
    pub fn new(cap: u64) -> Self {
        RandomizedGmrDecider { cap }
    }
}

impl RandomizedObliviousAlgorithm<Section3Label> for RandomizedGmrDecider {
    fn name(&self) -> &str {
        "corollary1-randomised-decider"
    }

    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, view: &ObliviousView<Section3Label>, rng: &mut dyn RngCore) -> Verdict {
        let budget = random_budget(rng, self.cap);
        match view.center_label().machine.run(budget) {
            RunOutcome::Halted(halt) if halt.output != Symbol(0) => Verdict::No,
            _ => Verdict::Yes,
        }
    }
}

/// The same randomised trick applied to the Section 3 promise problem
/// (reject iff the labelled machine is seen to halt within the random
/// budget) — used to compare randomness against identifiers on the simplest
/// possible instance family.
#[derive(Debug, Clone)]
pub struct RandomizedPromiseDecider {
    cap: u64,
}

impl RandomizedPromiseDecider {
    /// Creates the decider with a budget cap.
    pub fn new(cap: u64) -> Self {
        RandomizedPromiseDecider { cap }
    }
}

impl RandomizedObliviousAlgorithm<MachineLabel> for RandomizedPromiseDecider {
    fn name(&self) -> &str {
        "randomised-promise-decider"
    }

    fn radius(&self) -> usize {
        0
    }

    fn evaluate(&self, view: &ObliviousView<MachineLabel>, rng: &mut dyn RngCore) -> Verdict {
        let budget = random_budget(rng, self.cap);
        match view.center_label().machine.run(budget) {
            RunOutcome::Halted(_) => Verdict::No,
            RunOutcome::OutOfFuel(_) => Verdict::Yes,
        }
    }
}

/// The paper's failure-probability bound `(1 − 1/√n)^n` for a graph on `n`
/// nodes: the probability that no node draws a budget of at least `n`.
pub fn failure_probability_bound(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n_f = n as f64;
    (1.0 - 1.0 / n_f.sqrt()).powf(n_f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section3::gmr_input;
    use ld_constructions::fragments::FragmentSource;
    use ld_local::decision::{estimate_acceptance, run_randomized};
    use ld_turing::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_budget_is_a_power_of_four_up_to_cap() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let b = random_budget(&mut rng, 1 << 20);
            assert!(b >= 1);
            assert!(b.is_power_of_two() || b == 1 << 20);
            // Powers of 4 have an even number of trailing zeros.
            if b < 1 << 20 {
                assert_eq!(b.trailing_zeros() % 2, 0);
            }
        }
    }

    #[test]
    fn yes_instances_are_always_accepted() {
        let spec = zoo::halts_with_output(3, Symbol(0));
        let input = gmr_input(&spec.machine, 1, 10_000, FragmentSource::WindowsAndDecoys).unwrap();
        let decider = RandomizedGmrDecider::new(1 << 20);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            assert!(run_randomized(&input, &decider, &mut rng).accepted());
        }
    }

    #[test]
    fn no_instances_are_rejected_with_high_probability() {
        let spec = zoo::halts_with_output(3, Symbol(1));
        let input = gmr_input(&spec.machine, 1, 10_000, FragmentSource::WindowsAndDecoys).unwrap();
        let decider = RandomizedGmrDecider::new(1 << 20);
        let mut rng = StdRng::seed_from_u64(11);
        let acceptance = estimate_acceptance(&input, &decider, 60, &mut rng);
        // The machine halts after 4 steps; a node rejects unless its budget
        // is below 4, i.e. unless it tossed a head immediately (prob 1/2) —
        // and the instance has dozens of nodes, so acceptance is ~0.
        assert!(acceptance < 0.05, "acceptance = {acceptance}");
    }

    #[test]
    fn promise_problem_randomised_decider() {
        let halting = zoo::halts_with_output(6, Symbol(1));
        let forever = zoo::infinite_loop();
        let no = ld_constructions::section3::promise::instance(&halting.machine, 16).unwrap();
        let yes = ld_constructions::section3::promise::instance(&forever.machine, 16).unwrap();
        let no_input = ld_local::Input::with_consecutive_ids(no).unwrap();
        let yes_input = ld_local::Input::with_consecutive_ids(yes).unwrap();
        let decider = RandomizedPromiseDecider::new(1 << 16);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(estimate_acceptance(&yes_input, &decider, 30, &mut rng) == 1.0);
        assert!(estimate_acceptance(&no_input, &decider, 60, &mut rng) < 0.2);
    }

    #[test]
    fn failure_bound_shrinks_with_n() {
        assert_eq!(failure_probability_bound(0), 0.0);
        let small = failure_probability_bound(4);
        let medium = failure_probability_bound(100);
        let large = failure_probability_bound(10_000);
        assert!(small > medium && medium > large);
        assert!(large < 1e-40);
    }
}
