//! The paper's local decision algorithms and the baselines they are compared
//! against.
//!
//! * [`section2`] — the bounded-identifier separation: the Id-oblivious
//!   structure verifier showing `P' ∈ LD*`, the identifier-reading decider
//!   showing `P ∈ LD`, and the indistinguishability harness showing
//!   `P ∉ LD*`.
//! * [`section3`] — the computability separation: the two-stage
//!   identifier-reading decider of Theorem 2, fuel-bounded Id-oblivious
//!   candidate deciders, and the separation algorithm `R` that would turn a
//!   correct Id-oblivious decider into a separator for `L₀`/`L₁`.
//! * [`randomized`] — Corollary 1: the randomised Id-oblivious
//!   `(1, 1−o(1))`-decider that replaces large identifiers with large random
//!   numbers.
//! * [`fractional`] — fractional `(p:q)`-colouring verification ported from
//!   Bousquet–Esperet–Pirot (arXiv 2012.01752): the first decider family
//!   beyond the paper's own sections, swept via the scenario DSL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fractional;
pub mod randomized;
pub mod section2;
pub mod section3;
