//! Fractional-colouring verification (Bousquet–Esperet–Pirot, arXiv
//! 2012.01752): the first decider family beyond the source paper's own
//! sections.
//!
//! A fractional `(p:q)`-colouring assigns every node a set of exactly `q`
//! colours from `0..p` (a `u64` bitmask) with adjacent sets disjoint.  The
//! property is locally checkable at radius 1 — each node verifies its own
//! set and its disjointness from every neighbour's — so the Id-oblivious
//! [`FractionalVerifier`] decides it in the paper's `LD*` sense.  Odd
//! cycles are the canonical instance family: `C_{2k+1}` admits the
//! `(2k+1 : k)`-colouring built by [`yes_instance`] and nothing denser,
//! and [`no_instance`] plants a single adjacent overlap that exactly one
//! edge's endpoints can see.

use ld_graph::{generators, LabeledGraph};
use ld_local::property::FractionalColoring;
use ld_local::{ObliviousAlgorithm, ObliviousView, Verdict};

/// The radius-1 Id-oblivious verifier for fractional `(p:q)`-colouring:
/// accept iff the centre's colour set is well-formed and disjoint from
/// every neighbour's.  The conjunction of all verdicts equals
/// [`Property::contains`](ld_local::property::Property::contains) for
/// [`FractionalColoring`] — pinned by `check_decides_oblivious`
/// in this module's tests.
#[derive(Debug, Clone, Copy)]
pub struct FractionalVerifier {
    property: FractionalColoring,
}

impl FractionalVerifier {
    /// Verifier for `(colors : set_size)`-colourings.
    pub fn new(colors: u32, set_size: u32) -> Self {
        FractionalVerifier {
            property: FractionalColoring::new(colors, set_size),
        }
    }

    /// The property this verifier decides.
    pub fn property(&self) -> FractionalColoring {
        self.property
    }
}

impl ObliviousAlgorithm<u64> for FractionalVerifier {
    fn name(&self) -> &str {
        "fractional-coloring-verifier"
    }

    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, view: &ObliviousView<u64>) -> Verdict {
        let center = *view.center_label();
        if !self.property.well_formed(center) {
            return Verdict::No;
        }
        let disjoint = view
            .neighbors_of_center()
            .all(|v| center & view.label(v) == 0);
        Verdict::from_bool(disjoint)
    }
}

/// The canonical `(2k+1 : k)`-colouring of the odd cycle `C_{2k+1}`:
/// vertex `i` gets the `k` consecutive colours `{ik, …, ik + k − 1}` mod
/// `2k+1`.  Adjacent windows start `k` apart on a `(2k+1)`-circle, so they
/// never overlap — a yes-instance of `(2k+1 : k)`-colouring, and the
/// densest one an odd cycle admits.
///
/// # Errors
///
/// Returns a message when `k` is 0 (no colour sets) or above 31 (the
/// `2k+1` colours no longer fit a `u64` bitmask).
pub fn yes_instance(k: u32) -> Result<LabeledGraph<u64>, String> {
    if k == 0 || k > 31 {
        return Err(format!("fractional cycles need 1 <= k <= 31 (got {k})"));
    }
    let p = u64::from(2 * k + 1);
    let labels: Vec<u64> = (0..p)
        .map(|i| {
            (0..u64::from(k)).fold(0u64, |set, offset| {
                set | 1 << ((i * u64::from(k) + offset) % p)
            })
        })
        .collect();
    LabeledGraph::new(generators::cycle(p as usize), labels)
        .map_err(|e| format!("fractional cycle construction: {e}"))
}

/// The yes-instance with vertex 0's window `{0, …, k−1}` nudged to
/// `{1, …, k}`: still a well-formed set, now meeting vertex 1's window
/// `{k, …, 2k−1}` in exactly `{k}` while staying disjoint from vertex
/// `2k`'s window `{k+1, …, 2k}` — so the violation is visible to the
/// radius-1 views centred at 0 and 1 and to no other node.
///
/// # Errors
///
/// Same domain as [`yes_instance`].
pub fn no_instance(k: u32) -> Result<LabeledGraph<u64>, String> {
    let yes = yes_instance(k)?;
    let mut labels = yes.labels().to_vec();
    labels[0] = (labels[0] & !1) | (1 << k);
    LabeledGraph::new(yes.graph().clone(), labels)
        .map_err(|e| format!("fractional cycle construction: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_local::decision::{check_decides_oblivious, run_oblivious};
    use ld_local::property::Property;
    use ld_local::{IdAssignment, Input};

    #[test]
    fn canonical_coloring_is_a_yes_instance() {
        for k in [1u32, 2, 5, 31] {
            let yes = yes_instance(k).unwrap();
            let property = FractionalColoring::new(2 * k + 1, k);
            assert!(property.contains(&yes), "k = {k}");
            let verifier = FractionalVerifier::new(2 * k + 1, k);
            let input = Input::new(yes, IdAssignment::consecutive(2 * k as usize + 1)).unwrap();
            assert!(run_oblivious(&input, &verifier).accepted(), "k = {k}");
        }
    }

    #[test]
    fn corrupted_instance_is_rejected_locally() {
        let no = no_instance(3).unwrap();
        let property = FractionalColoring::new(7, 3);
        assert!(!property.contains(&no));
        let verifier = FractionalVerifier::new(7, 3);
        let input = Input::new(no, IdAssignment::consecutive(7)).unwrap();
        let decision = run_oblivious(&input, &verifier);
        assert!(!decision.accepted());
        // The defect is the {0, 1} edge: exactly its endpoints reject.
        assert_eq!(decision.rejecting_nodes().len(), 2);
    }

    #[test]
    fn verifier_decides_the_property_on_assorted_labelings() {
        let verifier = FractionalVerifier::new(5, 2);
        let property = verifier.property();
        // Exhausting all labelings of C_5 is too big; a seeded spread of
        // mostly-invalid and occasionally-valid colourings exercises both
        // verdicts.
        let inputs: Vec<Input<u64>> = (0u64..64)
            .map(|seed| {
                let labels: Vec<u64> = (0..5)
                    .map(|i| (seed.rotate_left(i * 13) % 32) | u64::from(i == 0))
                    .collect();
                let labeled = LabeledGraph::new(generators::cycle(5), labels).unwrap();
                Input::new(labeled, IdAssignment::consecutive(5)).unwrap()
            })
            .chain([Input::new(yes_instance(2).unwrap(), IdAssignment::consecutive(5)).unwrap()])
            .collect();
        let report = check_decides_oblivious(&property, &verifier, &inputs);
        assert!(report.all_correct(), "errors: {:?}", report.errors);
    }

    #[test]
    fn out_of_range_k_is_rejected() {
        assert!(yes_instance(0).is_err());
        assert!(yes_instance(32).is_err());
        assert!(no_instance(0).is_err());
    }
}
