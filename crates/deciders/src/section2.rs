//! Deciders for the Section 2 construction (bounded identifiers).

use ld_constructions::section2::{promise::CycleParamLabel, Coord, Section2Label, Section2Params};
use ld_local::enumeration::{coverage, distinct_oblivious_views_of};
use ld_local::{
    decision, IdAssignment, IdBound, Input, LocalAlgorithm, ObliviousAlgorithm, ObliviousView,
    Verdict, View,
};
use std::collections::BTreeSet;

/// The Id-oblivious structure verifier: accepts exactly the locally
/// consistent Section 2 instances, i.e. it decides `P' = P ∪ {T_r}` (this is
/// the paper's "`P' ∈ LD*`" direction).
///
/// Each node checks, within radius 1:
///
/// * every visible node announces the same parameter `r`;
/// * a coordinate node's neighbourhood is exactly its layered-tree
///   neighbourhood (restricted to the instance), with missing tree
///   neighbours excused only by adjacency to a pivot;
/// * a pivot node sees exactly the border of a legal depth-`r` subtree of
///   the depth-`R(r)` tree.
#[derive(Debug, Clone)]
pub struct StructureVerifier {
    params: Section2Params,
}

impl StructureVerifier {
    /// Wraps the construction parameters.
    pub fn new(params: Section2Params) -> Self {
        StructureVerifier { params }
    }

    fn check_coordinate_node(&self, view: &ObliviousView<Section2Label>, c: Coord) -> bool {
        let depth = self.params.big_depth();
        if c.y > depth || c.x >= (1u64 << c.y) {
            return false;
        }
        let center = view.center();
        let mut neighbor_coords = BTreeSet::new();
        let mut pivot_neighbors = 0usize;
        for u in view.neighbors_of_center() {
            let label = view.label(u);
            if label.r != self.params.r() {
                return false;
            }
            match label.coord {
                Some(nc) => {
                    if !neighbor_coords.insert(nc) {
                        return false; // duplicate coordinate among neighbours
                    }
                }
                None => pivot_neighbors += 1,
            }
        }
        if pivot_neighbors > 1 {
            return false;
        }
        let expected = Section2Params::tree_neighbors(c, depth);
        // Every neighbour's coordinate must be an expected tree neighbour.
        if !neighbor_coords.iter().all(|nc| expected.contains(nc)) {
            return false;
        }
        // Every expected tree neighbour must be present, unless this node is
        // a border node of a small instance (excused by the pivot edge).
        let missing = expected.iter().any(|e| !neighbor_coords.contains(e));
        if missing && pivot_neighbors == 0 {
            return false;
        }
        let _ = center;
        true
    }

    fn check_pivot_node(&self, view: &ObliviousView<Section2Label>) -> bool {
        let depth = self.params.big_depth();
        let r = self.params.r();
        let mut border = BTreeSet::new();
        for u in view.neighbors_of_center() {
            let label = view.label(u);
            if label.r != r {
                return false;
            }
            match label.coord {
                Some(c) => {
                    if !border.insert(c) {
                        return false;
                    }
                }
                None => return false, // a pivot adjacent to a pivot
            }
        }
        if border.is_empty() {
            return false;
        }
        // Candidate roots: ancestors (within r levels) of any border node.
        let mut candidates = BTreeSet::new();
        for c in &border {
            for k in 0..=r.min(c.y) {
                candidates.insert(Coord::new(c.x >> k, c.y - k));
            }
        }
        candidates.into_iter().any(|root| {
            root.y + r <= depth
                && root.x < (1u64 << root.y)
                && self
                    .params
                    .border_coords(root)
                    .into_iter()
                    .collect::<BTreeSet<_>>()
                    == border
        })
    }
}

impl ObliviousAlgorithm<Section2Label> for StructureVerifier {
    fn name(&self) -> &str {
        "section2-structure-verifier"
    }

    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, view: &ObliviousView<Section2Label>) -> Verdict {
        let label = view.center_label();
        if label.r != self.params.r() {
            return Verdict::No;
        }
        let ok = match label.coord {
            Some(c) => self.check_coordinate_node(view, c),
            None => self.check_pivot_node(view),
        };
        Verdict::from_bool(ok)
    }
}

/// The identifier-reading decider for `P` (the paper's "`P ∈ LD`"
/// direction): run the structure verifier, and additionally reject when the
/// node's own identifier is at least `R(r)` — which, under assumption (B),
/// can only happen in instances far larger than any small instance, i.e. in
/// `T_r`.
#[derive(Debug, Clone)]
pub struct IdBasedDecider {
    verifier: StructureVerifier,
    threshold: u64,
}

impl IdBasedDecider {
    /// Wraps the construction parameters.
    pub fn new(params: Section2Params) -> Self {
        let threshold = u64::from(params.big_depth());
        IdBasedDecider {
            verifier: StructureVerifier::new(params),
            threshold,
        }
    }

    /// The rejection threshold `R(r)`.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl LocalAlgorithm<Section2Label> for IdBasedDecider {
    fn name(&self) -> &str {
        "section2-id-decider"
    }

    fn radius(&self) -> usize {
        1
    }

    fn evaluate(&self, view: &View<Section2Label>) -> Verdict {
        if view.center_id() >= self.threshold {
            return Verdict::No;
        }
        self.verifier.evaluate(&view.to_oblivious())
    }
}

/// Builds inputs for the Section 2 experiment: every sampled small instance
/// followed by the large instance `T_r` **as the last element** (callers
/// such as the runner's relationship-table scenario rely on this ordering),
/// each with identifiers respecting assumption (B) (consecutive
/// identifiers, which always satisfy `Id(v) < f(n)` for the monotone bounds
/// used here).
///
/// # Errors
///
/// Propagates construction errors.
pub fn experiment_inputs(
    params: &Section2Params,
    max_small: usize,
) -> ld_constructions::Result<Vec<Input<Section2Label>>> {
    let mut inputs = Vec::new();
    for small in params.sample_small_instances(max_small)? {
        let n = small.node_count();
        inputs.push(
            Input::new(small, IdAssignment::consecutive(n))
                .map_err(ld_constructions::ConstructionError::from)?,
        );
    }
    let large = params.large_instance()?;
    let n = large.node_count();
    inputs.push(
        Input::new(large, IdAssignment::consecutive(n))
            .map_err(ld_constructions::ConstructionError::from)?,
    );
    Ok(inputs)
}

/// The Figure 1 indistinguishability measurement (experiment E2): the
/// fraction of radius-`t` views of `T_r` that already occur in the sampled
/// small instances.  The paper's `P ∉ LD*` argument is precisely that this
/// coverage reaches 1 for `r ≫ t` — so any Id-oblivious algorithm accepting
/// all of `H_r` also accepts `T_r`.
///
/// # Errors
///
/// Propagates construction errors.
pub fn large_instance_view_coverage(
    params: &Section2Params,
    radius: usize,
    max_small: usize,
) -> ld_constructions::Result<f64> {
    let large_views = distinct_oblivious_views_of(&params.large_instance()?, radius);
    let mut small_views = Vec::new();
    for small in params.sample_small_instances(max_small)? {
        small_views.extend(distinct_oblivious_views_of(&small, radius));
    }
    Ok(coverage(&large_views, &small_views))
}

/// Checks that a candidate Id-oblivious algorithm cannot decide `P`: if it
/// accepts every sampled small instance it must also accept `T_r` (because
/// of the view coverage above), and accepting `T_r` is an error.  Returns
/// `true` when the candidate indeed fails on some instance of the family.
///
/// # Errors
///
/// Propagates construction errors.
pub fn oblivious_candidate_fails<A>(
    params: &Section2Params,
    candidate: &A,
    max_small: usize,
) -> ld_constructions::Result<bool>
where
    A: ObliviousAlgorithm<Section2Label>,
{
    for small in params.sample_small_instances(max_small)? {
        let n = small.node_count();
        let input = Input::new(small, IdAssignment::consecutive(n))
            .map_err(ld_constructions::ConstructionError::from)?;
        if !decision::run_oblivious(&input, candidate).accepted() {
            // Rejecting a yes-instance is already an error.
            return Ok(true);
        }
    }
    let large = params.large_instance()?;
    let n = large.node_count();
    let input = Input::new(large, IdAssignment::consecutive(n))
        .map_err(ld_constructions::ConstructionError::from)?;
    // Accepting the large instance (a no-instance of P) is an error.
    Ok(decision::run_oblivious(&input, candidate).accepted())
}

/// The identifier-reading decider for the Section 2 *promise problem*: a
/// node rejects iff its identifier is at least `f(r)`, which can never
/// happen in the `r`-cycle but does happen in the `f(r)`-cycle for the
/// identifier assignments used by the experiments (consecutive identifiers
/// starting at 1).
#[derive(Debug, Clone)]
pub struct PromiseIdDecider {
    bound: IdBound,
}

impl PromiseIdDecider {
    /// Wraps the bound function `f`.
    pub fn new(bound: IdBound) -> Self {
        PromiseIdDecider { bound }
    }
}

impl LocalAlgorithm<CycleParamLabel> for PromiseIdDecider {
    fn name(&self) -> &str {
        "section2-promise-id-decider"
    }

    fn radius(&self) -> usize {
        0
    }

    fn evaluate(&self, view: &View<CycleParamLabel>) -> Verdict {
        let r = view.center_label().r;
        Verdict::from_bool(view.center_id() < self.bound.apply(r))
    }
}

/// Demonstrates that the two promise instances are Id-obliviously
/// indistinguishable at radius `t`: every radius-`t` view of the
/// `f(r)`-cycle occurs in the `r`-cycle and vice versa (provided `r > 2t`).
///
/// # Errors
///
/// Propagates construction errors.
pub fn promise_views_indistinguishable(
    r: u64,
    bound: &IdBound,
    radius: usize,
    max_nodes: u64,
) -> ld_constructions::Result<bool> {
    let yes = ld_constructions::section2::promise::yes_instance(r)?;
    let no = ld_constructions::section2::promise::no_instance(r, bound, max_nodes)?;
    let yes_views = distinct_oblivious_views_of(&yes, radius);
    let no_views = distinct_oblivious_views_of(&no, radius);
    Ok(coverage(&no_views, &yes_views) == 1.0 && coverage(&yes_views, &no_views) == 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_constructions::section2::{SmallInstancesProperty, SmallOrLargeProperty};
    use ld_graph::NodeId;
    use ld_local::algorithm::AlwaysYes;
    use ld_local::decision::{check_decides, check_decides_oblivious};
    use ld_local::property::Property;

    fn params() -> Section2Params {
        Section2Params::new(1, IdBound::identity_plus(2)).unwrap()
    }

    #[test]
    fn structure_verifier_decides_p_prime_on_the_family() {
        let params = params();
        let verifier = StructureVerifier::new(params.clone());
        let property = SmallOrLargeProperty::new(params.clone());
        let inputs = experiment_inputs(&params, 12).unwrap();
        let report = check_decides_oblivious(&property, &verifier, &inputs);
        assert!(report.all_correct(), "errors: {:?}", report.errors);
    }

    #[test]
    fn structure_verifier_rejects_corrupted_instances() {
        let params = params();
        let verifier = StructureVerifier::new(params.clone());
        // Corrupt a small instance by changing a coordinate.
        let mut small = params.small_instance(Coord::new(0, 2)).unwrap();
        *small.label_mut(NodeId(1)) = Section2Label {
            r: 1,
            coord: Some(Coord::new(3, 6)),
        };
        let n = small.node_count();
        let input = Input::new(small, IdAssignment::consecutive(n)).unwrap();
        assert!(!decision::run_oblivious(&input, &verifier).accepted());

        // A uniform path with pivot labels everywhere is rejected.
        let junk = ld_graph::LabeledGraph::uniform(
            ld_graph::generators::path(5),
            Section2Label { r: 1, coord: None },
        );
        let input = Input::new(junk, IdAssignment::consecutive(5)).unwrap();
        assert!(!decision::run_oblivious(&input, &verifier).accepted());
    }

    #[test]
    fn id_decider_decides_p_with_bounded_identifiers() {
        let params = params();
        let decider = IdBasedDecider::new(params.clone());
        assert_eq!(decider.threshold(), u64::from(params.big_depth()));
        let property = SmallInstancesProperty::new(params.clone());
        let inputs = experiment_inputs(&params, 12).unwrap();
        // Consecutive identifiers satisfy (B): in small instances all ids are
        // below R(r); in the large instance some id reaches R(r).
        let report = check_decides(&property, &decider, &inputs);
        assert!(report.all_correct(), "errors: {:?}", report.errors);
    }

    #[test]
    fn large_instance_views_are_partially_covered_by_small_instances() {
        // With r = t = 1 the coverage is necessarily partial (the paper's
        // full-coverage claim needs r >> t); the measured values for larger
        // r are recorded by experiment E2 / EXPERIMENTS.md.
        let params = params();
        let c = large_instance_view_coverage(&params, 1, usize::MAX).unwrap();
        assert!(c > 0.0 && c <= 1.0, "coverage = {c}");
        // Coverage can only improve when more structure fits inside the
        // small instances, i.e. when the view radius shrinks.
        let c0 = large_instance_view_coverage(&params, 0, usize::MAX).unwrap();
        assert!(c0 >= c, "radius-0 coverage {c0} < radius-1 coverage {c}");
    }

    #[test]
    fn every_oblivious_candidate_in_the_harness_fails() {
        let params = params();
        // The always-yes candidate accepts T_r: failure.
        assert!(oblivious_candidate_fails(&params, &AlwaysYes, 8).unwrap());
        // The structure verifier for P' also accepts T_r: failure as a
        // decider for P.
        let verifier = StructureVerifier::new(params.clone());
        assert!(oblivious_candidate_fails(&params, &verifier, 8).unwrap());
        // The truncated Id-oblivious simulation of the Id-based decider
        // accepts everything when its identifier universe is small (it can
        // never exhibit an id >= R(r)): failure again.
        let simulated = ld_local::simulation::ObliviousSimulation::new(
            IdBasedDecider::new(params.clone()),
            u64::from(params.big_depth()).min(6),
        );
        assert!(oblivious_candidate_fails(&params, &simulated, 4).unwrap());
    }

    #[test]
    fn promise_problem_id_decider_and_indistinguishability() {
        let bound = IdBound::linear(3, 0);
        let r = 7u64;
        let decider = PromiseIdDecider::new(bound.clone());
        let yes = ld_constructions::section2::promise::yes_instance(r).unwrap();
        let no = ld_constructions::section2::promise::no_instance(r, &bound, 10_000).unwrap();
        let property = ld_constructions::section2::promise::AnnouncedLengthProperty;
        assert!(property.contains(&yes));
        assert!(!property.contains(&no));

        // Identifiers start at 1 so that the f(r)-cycle contains an id >= f(r).
        let yes_input = Input::new(yes, IdAssignment::consecutive_from(r as usize, 1)).unwrap();
        let no_input = Input::new(
            no,
            IdAssignment::consecutive_from(bound.apply(r) as usize, 1),
        )
        .unwrap();
        assert!(decision::run_local(&yes_input, &decider).accepted());
        assert!(!decision::run_local(&no_input, &decider).accepted());

        // At radius 2 with r = 7 > 2*2 the two cycles are Id-obliviously
        // indistinguishable.
        assert!(promise_views_indistinguishable(r, &bound, 2, 10_000).unwrap());
    }
}
