//! Cells: the unit of work a sweep is made of.
//!
//! A scenario expands into a list of *cells* — one fully determined
//! parameter combination each (family × size × radius × id-regime ×
//! algorithm).  The executor runs cells in any order on any number of
//! threads; everything a cell reports is a pure function of its spec and its
//! seed, so reports are reproducible bit for bit.

use ld_local::enumeration::BudgetUsage;
use std::time::Duration;

/// The declarative description of one parameter cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// A stable human-readable identifier, unique within the sweep
    /// (e.g. `"tree/r=1/root=3.2/ids=shuffled/alg=verifier"`).
    pub id: String,
    /// The cell's parameters as ordered key–value pairs, exactly as they
    /// appear in reports.
    pub params: Vec<(String, String)>,
}

impl CellSpec {
    /// Builds a spec from an id and `(key, value)` pairs.
    pub fn new(
        id: impl Into<String>,
        params: impl IntoIterator<Item = (&'static str, String)>,
    ) -> Self {
        CellSpec {
            id: id.into(),
            params: params
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// The value of parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// What a cell computed: a verdict token, a pass flag, and any number of
/// named numeric metrics.  Wall time deliberately lives *outside* this type
/// (in [`CellResult`]) so that outcomes are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The scenario-defined verdict token (e.g. `"accept"`, `"reject"`,
    /// `"separated"`).
    pub verdict: String,
    /// Whether the verdict matched the cell's expectation.
    pub pass: bool,
    /// Deterministic numeric outputs (counts, coverages, rates).
    pub metrics: Vec<(String, f64)>,
    /// What the cell's enumeration work budget recorded, for cells that ran
    /// under one (`None` for unbudgeted cells).  Exhaustion
    /// (`budget.exhausted`) is an explicit outcome — the work was cut off
    /// deterministically — distinct from both failure and panic.
    pub budget: Option<BudgetUsage>,
}

impl CellOutcome {
    /// An outcome with no metrics.
    pub fn new(verdict: impl Into<String>, pass: bool) -> Self {
        CellOutcome {
            verdict: verdict.into(),
            pass,
            metrics: Vec::new(),
            budget: None,
        }
    }

    /// Adds a named metric.
    #[must_use]
    pub fn with_metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Records what the cell's enumeration budget observed.
    #[must_use]
    pub fn with_budget(mut self, usage: BudgetUsage) -> Self {
        self.budget = Some(usage);
        self
    }

    /// `true` when the cell ran under a budget that was exhausted.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.is_some_and(|b| b.exhausted)
    }

    /// The value of metric `name`, if present.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A cell after execution: its spec, its derived seed, its outcome (or the
/// panic message if the cell blew up), and how long it took.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's declarative spec.
    pub spec: CellSpec,
    /// The per-cell seed the executor derived for it.
    pub seed: u64,
    /// The outcome, or `Err(panic message)` when the cell panicked (panics
    /// are isolated; the rest of the sweep is unaffected).
    pub outcome: Result<CellOutcome, String>,
    /// Wall-clock time of this cell alone.
    pub wall: Duration,
}

impl CellResult {
    /// `true` when the cell completed and its verdict matched expectation.
    pub fn passed(&self) -> bool {
        matches!(&self.outcome, Ok(outcome) if outcome.pass)
    }

    /// `true` when the cell panicked.
    pub fn panicked(&self) -> bool {
        self.outcome.is_err()
    }

    /// `true` when the cell completed but its work budget was exhausted.
    pub fn exhausted(&self) -> bool {
        matches!(&self.outcome, Ok(outcome) if outcome.budget_exhausted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_params_are_ordered_and_queryable() {
        let spec = CellSpec::new(
            "cycle/n=10",
            [("family", "cycle".to_string()), ("n", "10".to_string())],
        );
        assert_eq!(spec.param("n"), Some("10"));
        assert_eq!(spec.param("missing"), None);
        assert_eq!(spec.params[0].0, "family");
    }

    #[test]
    fn outcome_metrics() {
        let outcome = CellOutcome::new("accept", true)
            .with_metric("coverage", 1.0)
            .with_metric("views", 3.0);
        assert_eq!(outcome.metric("views"), Some(3.0));
        assert_eq!(outcome.metric("none"), None);
    }

    #[test]
    fn outcome_budget_status() {
        let plain = CellOutcome::new("accept", true);
        assert_eq!(plain.budget, None);
        assert!(!plain.budget_exhausted());
        let usage = BudgetUsage {
            nodes_visited: 100,
            views_materialized: 7,
            exhausted: true,
        };
        let capped = CellOutcome::new("exhausted", true).with_budget(usage);
        assert!(capped.budget_exhausted());
        assert_eq!(capped.budget, Some(usage));
        let result = CellResult {
            spec: CellSpec::new("x", []),
            seed: 1,
            outcome: Ok(capped),
            wall: Duration::ZERO,
        };
        assert!(result.exhausted() && result.passed());
    }

    #[test]
    fn result_status_helpers() {
        let spec = CellSpec::new("x", []);
        let ok = CellResult {
            spec: spec.clone(),
            seed: 1,
            outcome: Ok(CellOutcome::new("accept", true)),
            wall: Duration::ZERO,
        };
        assert!(ok.passed() && !ok.panicked());
        let bad = CellResult {
            spec,
            seed: 1,
            outcome: Err("boom".to_string()),
            wall: Duration::ZERO,
        };
        assert!(!bad.passed() && bad.panicked());
    }
}
