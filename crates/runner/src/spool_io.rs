//! Pluggable report/checkpoint file I/O, with a deterministic
//! fault-injection implementation.
//!
//! Every byte the streaming pipeline persists — the v3 report, its `.ckpt`
//! sidecar, and (in `ld-serve`) the spool's job-spec sidecars — flows
//! through the [`SpoolIo`] trait.  Production uses [`RealIo`], a thin
//! delegation to `std::fs`.  The fault-injection suite uses [`FaultIo`],
//! which performs the same operations on the same real paths but consults
//! an [`interleave::fault::FaultPlan`] before each primitive: the scripted
//! operation suffers a torn write (prefix persisted, then process death),
//! a short read (the handle sees a truncated file), or a clean `ENOSPC`.
//! Because `FaultIo` leaves its torn state on the real filesystem, a test
//! can crash a pipeline at operation *k* and then recover it with
//! [`RealIo`] — exactly what a restarted process would see.
//!
//! The trait is object-safe on purpose: [`crate::stream`] and the serve
//! spool hold a `&dyn SpoolIo`/`Arc<dyn SpoolIo>` so the fault layer
//! threads through without monomorphising every caller.

use interleave::fault::{Decision, FaultPlan};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open spool/report file: readable, writable, truncatable.
pub trait SpoolFile: Read + Write + Send {
    /// Truncates the file to `len` bytes and leaves the cursor at the new
    /// end (the resume path drops a torn tail, then appends).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn truncate_to(&mut self, len: u64) -> io::Result<()>;
}

/// The file operations the streaming pipeline and the spool perform.
pub trait SpoolIo: Send + Sync {
    /// Creates (truncating) `path` for writing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>>;

    /// Opens `path` for reading and writing without truncating.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>>;

    /// Opens `path` in append mode.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>>;

    /// Reads `path` to a string.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Writes `bytes` to `path` atomically (write a `.tmp` sibling, then
    /// rename): a crash leaves either the old file or the new one, never a
    /// torn mix.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Removes `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists (a pure query, never faulted).
    fn exists(&self, path: &Path) -> bool;
}

/// The `.tmp` sibling used by [`SpoolIo::write_atomic`] (`spec.job` →
/// `spec.job.tmp`).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Production I/O: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

struct RealFile(File);

impl Read for RealFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl SpoolFile for RealFile {
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)?;
        self.0.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

impl SpoolIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        Ok(Box::new(RealFile(
            OpenOptions::new().read(true).write(true).open(path)?,
        )))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        Ok(Box::new(RealFile(
            OpenOptions::new().append(true).open(path)?,
        )))
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

fn crash_error() -> io::Error {
    io::Error::other("injected fault: process died mid-operation")
}

fn enospc_error() -> io::Error {
    io::Error::other("injected fault: no space left on device")
}

/// Fault-injecting I/O over the real filesystem: identical to [`RealIo`]
/// except that the operation scripted in its [`FaultPlan`] fails as
/// scheduled (see [`interleave::fault`] for the semantics).  Torn state is
/// left on disk so recovery can be exercised with [`RealIo`] afterwards.
#[derive(Debug, Clone)]
pub struct FaultIo {
    plan: Arc<FaultPlan>,
}

impl FaultIo {
    /// I/O driven by `plan`.
    pub fn new(plan: Arc<FaultPlan>) -> FaultIo {
        FaultIo { plan }
    }

    /// The underlying plan (for op counts and fired/crashed queries).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

struct FaultFile {
    inner: File,
    plan: Arc<FaultPlan>,
    /// Set once a short read fired: the handle reports EOF from then on,
    /// as if the file had been truncated underneath the reader.
    short: bool,
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.short {
            return Ok(0);
        }
        match self.plan.decide() {
            Decision::Proceed => self.inner.read(buf),
            Decision::ShortRead => {
                self.short = true;
                if buf.is_empty() {
                    return Ok(0);
                }
                // Deliver at most half the asked-for bytes, then EOF.
                let take = (buf.len() / 2).max(1);
                self.inner.read(&mut buf[..take])
            }
            Decision::Enospc => Err(enospc_error()),
            Decision::TornWrite | Decision::Crashed => Err(crash_error()),
        }
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.plan.decide() {
            Decision::Proceed | Decision::ShortRead => self.inner.write(buf),
            Decision::TornWrite => {
                // Persist a prefix — the torn write — then die.  Errors
                // from the partial write itself are moot: the verdict is
                // already "crashed".
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                let _ = self.inner.flush();
                Err(crash_error())
            }
            Decision::Enospc => Err(enospc_error()),
            Decision::Crashed => Err(crash_error()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.plan.decide() {
            Decision::Proceed | Decision::ShortRead => self.inner.flush(),
            Decision::Enospc => Err(enospc_error()),
            Decision::TornWrite | Decision::Crashed => Err(crash_error()),
        }
    }
}

impl SpoolFile for FaultFile {
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        match self.plan.decide() {
            Decision::Proceed | Decision::ShortRead => {
                self.inner.set_len(len)?;
                self.inner.seek(SeekFrom::End(0))?;
                Ok(())
            }
            Decision::Enospc => Err(enospc_error()),
            Decision::TornWrite | Decision::Crashed => Err(crash_error()),
        }
    }
}

impl FaultIo {
    fn open_with(&self, open: impl FnOnce() -> io::Result<File>) -> io::Result<Box<dyn SpoolFile>> {
        match self.plan.decide() {
            Decision::Proceed | Decision::ShortRead => Ok(Box::new(FaultFile {
                inner: open()?,
                plan: Arc::clone(&self.plan),
                short: false,
            })),
            Decision::Enospc => Err(enospc_error()),
            Decision::TornWrite | Decision::Crashed => Err(crash_error()),
        }
    }
}

impl SpoolIo for FaultIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        self.open_with(|| File::create(path))
    }

    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        self.open_with(|| OpenOptions::new().read(true).write(true).open(path))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        self.open_with(|| OpenOptions::new().append(true).open(path))
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        match self.plan.decide() {
            Decision::Proceed => std::fs::read_to_string(path),
            Decision::ShortRead => {
                let text = std::fs::read_to_string(path)?;
                let mut cut = text.len() / 2;
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                Ok(text[..cut].to_string())
            }
            Decision::Enospc => Err(enospc_error()),
            Decision::TornWrite | Decision::Crashed => Err(crash_error()),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        // Two crash points: the tmp write (a torn tmp is ignored by spool
        // scans — the `.job` suffix never matches) and the rename.
        match self.plan.decide() {
            Decision::Proceed | Decision::ShortRead => std::fs::write(&tmp, bytes)?,
            Decision::TornWrite => {
                let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
                return Err(crash_error());
            }
            Decision::Enospc => return Err(enospc_error()),
            Decision::Crashed => return Err(crash_error()),
        }
        match self.plan.decide() {
            Decision::Proceed | Decision::ShortRead => std::fs::rename(&tmp, path),
            Decision::Enospc => Err(enospc_error()),
            Decision::TornWrite | Decision::Crashed => Err(crash_error()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.plan.decide() {
            Decision::Proceed | Decision::ShortRead => std::fs::remove_file(path),
            Decision::Enospc => Err(enospc_error()),
            Decision::TornWrite | Decision::Crashed => Err(crash_error()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave::fault::FaultKind;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ld-spool-io-{tag}-{}", std::process::id()))
    }

    #[test]
    fn real_io_round_trips_and_write_atomic_leaves_no_tmp() {
        let path = temp("real");
        let io = RealIo;
        io.write_atomic(&path, b"{\"a\":1}\n")
            .expect("atomic write");
        assert!(!tmp_path(&path).exists());
        assert_eq!(io.read_to_string(&path).expect("read"), "{\"a\":1}\n");
        let mut file = io.open_read_write(&path).expect("open");
        file.truncate_to(3).expect("truncate");
        file.write_all(b"XYZ").expect("append");
        file.flush().expect("flush");
        drop(file);
        assert_eq!(io.read_to_string(&path).expect("read"), "{\"aXYZ");
        io.remove_file(&path).expect("remove");
        assert!(!io.exists(&path));
    }

    #[test]
    fn torn_write_persists_a_prefix_then_kills_every_later_op() {
        let path = temp("torn");
        // Ops: 0 = create, 1 = write (torn).
        let io = FaultIo::new(Arc::new(FaultPlan::inject(1, FaultKind::TornWrite)));
        let mut file = io.create(&path).expect("create is op 0");
        let err = file.write_all(b"0123456789").expect_err("torn write");
        assert!(err.to_string().contains("died"), "{err}");
        assert!(io.plan().crashed());
        // The prefix is on disk; the dead process can do nothing more.
        assert_eq!(std::fs::read(&path).expect("read"), b"01234");
        assert!(io.read_to_string(&path).is_err());
        assert!(io.remove_file(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_read_truncates_the_view_and_then_reports_eof() {
        let path = temp("short");
        std::fs::write(&path, b"abcdefgh").expect("seed file");
        let io = FaultIo::new(Arc::new(FaultPlan::inject(1, FaultKind::ShortRead)));
        let mut file = io.open_read_write(&path).expect("open is op 0");
        let mut buf = [0u8; 8];
        let n = file.read(&mut buf).expect("short read");
        assert!(n < 8, "read must be short, got {n}");
        assert_eq!(file.read(&mut buf).expect("eof"), 0);
        assert!(!io.plan().crashed());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enospc_fails_cleanly_and_the_process_continues() {
        let path = temp("enospc");
        let io = FaultIo::new(Arc::new(FaultPlan::inject(1, FaultKind::Enospc)));
        let mut file = io.create(&path).expect("create is op 0");
        let err = file.write_all(b"data").expect_err("enospc");
        assert!(err.to_string().contains("no space"), "{err}");
        // Alive: the next write proceeds.
        file.write_all(b"data").expect("post-enospc write");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_atomic_write_leaves_only_a_tmp_sibling() {
        let path = temp("atomic");
        let io = FaultIo::new(Arc::new(FaultPlan::inject(0, FaultKind::TornWrite)));
        assert!(io.write_atomic(&path, b"spec-bytes").is_err());
        assert!(
            !path.exists(),
            "target must not exist after a torn tmp write"
        );
        let _ = std::fs::remove_file(tmp_path(&path));
    }
}
