//! A minimal JSON document builder and reader.
//!
//! The workspace builds offline against a vendored `serde` whose derives are
//! markers only (no codec backend), so the runner carries its own codec for
//! the two directions it needs: emitting reports, and reading them back
//! ([`Json::parse`], the substrate of the version-compatible
//! [`crate::summary::ReportSummary`] reader).  Rendering is fully
//! deterministic — object keys keep insertion order and numbers format the
//! same way on every run — which is what lets the determinism harness
//! compare reports byte for byte.

use std::fmt::Write as _;

/// A JSON value.  Construct with the `From` impls and [`Json::object`] /
/// [`Json::array`], render with [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (seeds and counters exceed `i64`).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered with Rust's shortest-roundtrip formatting.
    F64(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An array from anything iterable.
    pub fn array<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Appends `key: value` to an object (panics on non-objects: a builder
    /// misuse, not a data error).
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// The value of `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, for non-negative integers.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The boolean payload, for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, for arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the inverse of [`Json::render`], accepting
    /// any standard JSON, not just this module's layout).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error, or
    /// on trailing non-whitespace input.
    pub fn parse(text: &str) -> std::result::Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline, the layout all `ldx` reports use.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value *as a fragment* of a larger document: exactly the
    /// bytes [`Json::render`] would emit for this value at nesting `depth`,
    /// with no trailing newline.  This is what lets the streaming report
    /// writer ([`crate::stream`]) produce output byte-identical to rendering
    /// the whole document at once.
    pub fn write_fragment(&self, out: &mut String, depth: usize) {
        self.write(out, depth);
    }

    /// Renders the document on a single line with no inter-token spacing
    /// and no trailing newline — the layout of checkpoint sidecar lines,
    /// which must be appendable one per line.  [`Json::parse`] reads both
    /// layouts back.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            // Scalars render identically in both layouts.
            other => other.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", byte as char))
    }
}

/// Maximum container nesting `Json::parse` accepts.  Reports nest a small
/// constant number of levels; the cap turns pathological input (e.g. tens
/// of thousands of `[`s) into an `Err` instead of a stack overflow.
const MAX_PARSE_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_PARSE_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_PARSE_DEPTH} at byte {pos}"
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Standard serializers encode non-BMP characters
                        // as a UTF-16 surrogate pair of consecutive \u
                        // escapes; combine them.  An unpaired surrogate
                        // decodes to the replacement char rather than
                        // erroring.
                        if (0xd800..=0xdbff).contains(&code)
                            && bytes.get(*pos + 1..*pos + 3) == Some(b"\\u")
                        {
                            if let Ok(low) = parse_hex4(bytes, *pos + 3) {
                                if (0xdc00..=0xdfff).contains(&low) {
                                    code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    *pos += 6;
                                }
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                // ld-analyze: allow(D004, reason = "the scan loop above only advances over validated UTF-8 boundaries")
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid utf-8"));
            }
        }
    }
}

/// The four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let hex = std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape".to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at byte {at}"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    // ld-analyze: allow(D004, reason = "the digit loop only consumes ASCII bytes, which are valid UTF-8")
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    // Integers keep full u64/i64 precision (seeds exceed 2^53); everything
    // else goes through f64.
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object()
            .set("name", "sweep")
            .set("cells", 3usize)
            .set("ok", true)
            .set("rate", 0.5f64)
            .set("tags", Json::array(["a", "b"]))
            .set("empty", Json::Arr(vec![]))
            .set("nothing", Json::Null);
        let text = doc.render();
        assert!(text.contains("\"name\": \"sweep\""));
        assert!(text.contains("\"cells\": 3"));
        assert!(text.contains("\"rate\": 0.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"nothing\": null"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::object().set("msg", "a \"b\"\n\\c\u{1}");
        let text = doc.render();
        assert!(text.contains(r#"\"b\""#), "{text}");
        assert!(text.contains("\\u0001"), "{text}");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn parse_roundtrips_rendered_documents() {
        let doc = Json::object()
            .set("name", "sweep \"x\"\n")
            .set("cells", 3usize)
            .set("seed", u64::MAX)
            .set("delta", -4i64)
            .set("rate", 0.625f64)
            .set("ok", true)
            .set("tags", Json::array(["a", "b"]))
            .set("empty", Json::Arr(vec![]))
            .set("nothing", Json::Null);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accepts_compact_and_foreign_layout() {
        let parsed = Json::parse("{\"a\":[1,2.5,null],\"b\":{\"c\":\"\\u0041\"}}").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            parsed.get("b").unwrap().get("c").unwrap().as_str(),
            Some("A")
        );
        assert_eq!(
            parsed.get("a").unwrap().as_arr().unwrap()[0].as_u64(),
            Some(1)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn parse_combines_surrogate_pairs() {
        // A standard ASCII-escaping serializer encodes U+1F600 as a
        // surrogate pair; the reader must reassemble it.
        let parsed = Json::parse("{\"msg\": \"a \\ud83d\\ude00 b\"}").unwrap();
        assert_eq!(parsed.get("msg").unwrap().as_str(), Some("a \u{1f600} b"));
        // Unpaired surrogates decode to the replacement char, not an error.
        let lone = Json::parse("\"\\ud83d x\"").unwrap();
        assert_eq!(lone.as_str(), Some("\u{fffd} x"));
    }

    #[test]
    fn parse_bounds_nesting_depth_instead_of_overflowing() {
        let deep = "[".repeat(50_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // A merely-nested-but-reasonable document still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let doc = Json::object().set("n", 3usize);
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("n").unwrap().as_str(), None);
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::I64(-1).as_u64(), None);
    }

    #[test]
    fn compact_rendering_roundtrips_and_has_no_whitespace() {
        let doc = Json::object()
            .set("a", Json::array([1u64, 2]))
            .set("b", Json::object().set("c", "x y"))
            .set("d", Json::Null);
        let compact = doc.render_compact();
        assert_eq!(compact, "{\"a\":[1,2],\"b\":{\"c\":\"x y\"},\"d\":null}");
        assert_eq!(Json::parse(&compact).unwrap(), doc);
    }

    #[test]
    fn fragments_compose_into_the_full_rendering() {
        let inner = Json::object().set("k", 1u64).set("l", Json::array(["a"]));
        let doc = Json::object().set("outer", inner.clone());
        let mut spliced = String::from("{\n  \"outer\": ");
        inner.write_fragment(&mut spliced, 1);
        spliced.push_str("\n}\n");
        assert_eq!(spliced, doc.render());
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            Json::object()
                .set("a", 1u64)
                .set("b", Json::array([Json::F64(1.25), Json::I64(-3)]))
                .render()
        };
        assert_eq!(build(), build());
    }
}
