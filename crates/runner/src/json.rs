//! A minimal JSON document builder.
//!
//! The workspace builds offline against a vendored `serde` whose derives are
//! markers only (no codec backend), so the runner carries its own writer for
//! the one direction it needs: emitting reports.  Rendering is fully
//! deterministic — object keys keep insertion order and numbers format the
//! same way on every run — which is what lets the determinism harness
//! compare reports byte for byte.

use std::fmt::Write as _;

/// A JSON value.  Construct with the `From` impls and [`Json::object`] /
/// [`Json::array`], render with [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (seeds and counters exceed `i64`).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered with Rust's shortest-roundtrip formatting.
    F64(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An array from anything iterable.
    pub fn array<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Appends `key: value` to an object (panics on non-objects: a builder
    /// misuse, not a data error).
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline, the layout all `ldx` reports use.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object()
            .set("name", "sweep")
            .set("cells", 3usize)
            .set("ok", true)
            .set("rate", 0.5f64)
            .set("tags", Json::array(["a", "b"]))
            .set("empty", Json::Arr(vec![]))
            .set("nothing", Json::Null);
        let text = doc.render();
        assert!(text.contains("\"name\": \"sweep\""));
        assert!(text.contains("\"cells\": 3"));
        assert!(text.contains("\"rate\": 0.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"nothing\": null"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::object().set("msg", "a \"b\"\n\\c\u{1}");
        let text = doc.render();
        assert!(text.contains(r#"\"b\""#), "{text}");
        assert!(text.contains("\\u0001"), "{text}");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            Json::object()
                .set("a", 1u64)
                .set("b", Json::array([Json::F64(1.25), Json::I64(-3)]))
                .render()
        };
        assert_eq!(build(), build());
    }
}
