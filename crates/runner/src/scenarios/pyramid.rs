//! `pyramid-sweep`: the quadtree-pyramid workload.
//!
//! Pyramids are the paper's example of a family whose structure is locally
//! verifiable; the sweep checks structural integrity per height and
//! enumerates distinct views per radius through the shared cache (pyramid
//! levels are self-similar, so view classes repeat heavily across heights).

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::pyramid::{Pyramid, PyramidLabel};
use ld_local::cache::ViewCache;
use ld_local::enumeration::distinct_oblivious_views_of_cached;
use std::sync::Arc;

/// The pyramid sweep scenario.
pub struct PyramidSweep;

fn structure_cell(plan: &mut Plan, h: u32) {
    let spec = CellSpec::new(
        format!("pyramid/h={h}/structure"),
        [
            ("family", "pyramid".to_string()),
            ("h", h.to_string()),
            ("check", "structure".to_string()),
            ("expect", "valid".to_string()),
        ],
    );
    plan.push(spec, move |_seed| {
        let pyramid = Pyramid::new(h).expect("swept heights construct");
        let valid = pyramid.verify_structure();
        CellOutcome::new(if valid { "valid" } else { "invalid" }, valid)
            .with_metric("nodes", pyramid.labeled().node_count() as f64)
            .with_metric("corner_distance", pyramid.corner_distance() as f64)
    });
}

fn views_cell(plan: &mut Plan, cache: &Arc<ViewCache<PyramidLabel>>, h: u32, radius: usize) {
    let spec = CellSpec::new(
        format!("pyramid/h={h}/views/radius={radius}"),
        [
            ("family", "pyramid".to_string()),
            ("h", h.to_string()),
            ("check", "views".to_string()),
            ("radius", radius.to_string()),
            ("expect", "enumerated".to_string()),
        ],
    );
    let cache = cache.clone();
    plan.push(spec, move |_seed| {
        let pyramid = Pyramid::new(h).expect("swept heights construct");
        let views = distinct_oblivious_views_of_cached(pyramid.labeled(), radius, &cache);
        CellOutcome::new("enumerated", !views.is_empty())
            .with_metric("distinct_views", views.len() as f64)
            .with_metric("nodes", pyramid.labeled().node_count() as f64)
    });
}

impl Scenario for PyramidSweep {
    fn name(&self) -> &str {
        "pyramid-sweep"
    }

    fn description(&self) -> &str {
        "Quadtree pyramids: structural verification and cached view enumeration per height/radius"
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        let mut plan = Plan::new();
        let cache = plan.share_cache::<PyramidLabel>();
        for h in 1u32.. {
            let Ok(pyramid) = Pyramid::new(h) else { break };
            if pyramid.labeled().node_count() > config.max_n {
                break;
            }
            structure_cell(&mut plan, h);
            for radius in 0..=2usize {
                views_cell(&mut plan, &cache, h, radius);
            }
        }
        if plan.cells.is_empty() {
            return Err(format!(
                "max_n = {} cannot fit the height-1 pyramid ({} nodes)",
                config.max_n,
                Pyramid::new(1).map_or(5, |p| p.labeled().node_count())
            ));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn pyramids_verify_and_enumerate() {
        let config = SweepConfig {
            max_n: 100,
            threads: 2,
            seed: 4,
            ..SweepConfig::default()
        };
        let report = executor::execute(&PyramidSweep, &config).unwrap();
        assert!(report.cells.len() >= 8, "{} cells", report.cells.len());
        assert_eq!(report.panicked(), 0);
        assert_eq!(report.failed(), 0);
        assert!(report.cache_hit_rate() > 0.0);
    }
}
