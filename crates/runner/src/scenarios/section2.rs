//! `section2-sweep`: the bounded-identifier separation, swept.
//!
//! Cells cover the layered-tree family `H_r` / `T_r` (every sampled small
//! instance × identifier regime × algorithm), the large instance and the
//! Figure 1 view-coverage measurement when `max_n` affords them, and the
//! promise problem on cycles across a size range.  Oblivious verdicts and
//! view enumeration run through shared canonical-view caches — the small
//! instances are all isomorphic to each other, so virtually every ball the
//! sweep canonicalises after the first instance is a cache hit.

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::section2::promise::{self, CycleParamLabel};
use ld_constructions::section2::{Coord, Section2Label, Section2Params};
use ld_deciders::section2::{IdBasedDecider, PromiseIdDecider, StructureVerifier};
use ld_local::cache::ViewCache;
use ld_local::enumeration::{
    coverage_cached, distinct_oblivious_views_of_budgeted_cached, EnumerationBudget,
};
use ld_local::{decision, IdAssignment, IdBound, Input};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Identifier regimes swept per instance.
const REGIMES: [&str; 3] = ["consecutive", "shifted", "shuffled"];

/// How many small-instance roots to sweep (the family has hundreds; they are
/// pairwise isomorphic, so a bounded sample exercises every view class).
/// Also the DSL `section2-trees` stanza's `max-roots` default.
pub(crate) const MAX_ROOTS: usize = 32;

/// Shift applied by the `shifted` regime; far above `R(r)` for the swept
/// parameters, so it deliberately violates assumption (B)'s spirit and flips
/// the Id-based decider to rejection.
const SHIFT: u64 = 100;

/// The Section 2 sweep scenario.
pub struct Section2Sweep;

fn ids_for(regime: &str, n: usize, seed: u64) -> IdAssignment {
    match regime {
        "consecutive" => IdAssignment::consecutive(n),
        "shifted" => IdAssignment::consecutive_from(n, SHIFT),
        "shuffled" => {
            let mut rng = StdRng::seed_from_u64(seed);
            IdAssignment::shuffled(n, &mut rng)
        }
        other => panic!("unknown id regime {other}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn tree_cell(
    plan: &mut Plan,
    params: &Section2Params,
    cache: &Arc<ViewCache<Section2Label>>,
    budget: EnumerationBudget,
    instance_kind: &str,
    root: Option<Coord>,
    regime: &'static str,
    algorithm: &'static str,
    expect: &'static str,
) {
    let r = params.r();
    let root_token = root.map_or("-".to_string(), |c| format!("{}.{}", c.x, c.y));
    let spec = CellSpec::new(
        format!("tree/r={r}/{instance_kind}={root_token}/ids={regime}/alg={algorithm}"),
        [
            ("family", "layered-tree".to_string()),
            ("r", r.to_string()),
            ("instance", instance_kind.to_string()),
            ("root", root_token),
            ("ids", regime.to_string()),
            ("alg", algorithm.to_string()),
            ("expect", expect.to_string()),
        ],
    );
    let params = params.clone();
    let cache = cache.clone();
    plan.push(spec, move |seed| {
        let labeled = match root {
            Some(root) => params.small_instance(root),
            None => params.large_instance(),
        }
        .expect("swept parameters construct valid instances");
        let n = labeled.node_count();
        let input = Input::new(labeled, ids_for(regime, n, seed))
            .expect("section 2 instances are connected with distinct ids");
        let accepted = match algorithm {
            "verifier" => decision::run_oblivious_cached(
                &input,
                &StructureVerifier::new(params.clone()),
                &cache,
            )
            .accepted(),
            "id-decider" => {
                decision::run_local(&input, &IdBasedDecider::new(params.clone())).accepted()
            }
            other => panic!("unknown algorithm {other}"),
        };
        let verdict = if accepted { "accept" } else { "reject" };
        let (views, usage) =
            distinct_oblivious_views_of_budgeted_cached(input.labeled(), 1, &cache, budget);
        // The decider's verdict is complete whatever the budget did, so the
        // pass judgement always stands; only the view-count metric depends
        // on the budgeted enumeration and is omitted when truncated (the
        // attached usage still records the exhaustion).
        let outcome = CellOutcome::new(verdict, verdict == expect).with_metric("nodes", n as f64);
        if usage.exhausted {
            return outcome.with_budget(usage);
        }
        outcome
            .with_metric("distinct_views_r1", views.len() as f64)
            .with_budget(usage)
    });
}

fn coverage_cell(
    plan: &mut Plan,
    params: &Section2Params,
    cache: &Arc<ViewCache<Section2Label>>,
    budget: EnumerationBudget,
    radius: usize,
    max_roots: usize,
) {
    let r = params.r();
    let spec = CellSpec::new(
        format!("tree/r={r}/figure1-coverage/radius={radius}"),
        [
            ("family", "layered-tree".to_string()),
            ("r", r.to_string()),
            ("instance", "coverage".to_string()),
            ("radius", radius.to_string()),
            ("expect", "covered>0".to_string()),
        ],
    );
    let params = params.clone();
    let cache = cache.clone();
    plan.push(spec, move |_seed| {
        let large = params
            .large_instance()
            .expect("swept parameters construct valid instances");
        let (large_views, mut usage) =
            distinct_oblivious_views_of_budgeted_cached(&large, radius, &cache, budget);
        let mut small_views = Vec::new();
        for small in params
            .sample_small_instances(max_roots)
            .expect("swept parameters construct valid instances")
        {
            if usage.exhausted {
                break;
            }
            let (views, spent) = distinct_oblivious_views_of_budgeted_cached(
                &small,
                radius,
                &cache,
                budget.after(&usage),
            );
            usage.absorb(&spent);
            small_views.extend(views);
        }
        if usage.exhausted {
            // An exhausted budget is an explicit outcome: the coverage
            // measurement is incomplete, so no pass/fail claim is made.
            return CellOutcome::new("exhausted", true).with_budget(usage);
        }
        let covered = coverage_cached(&large_views, &small_views, &cache);
        CellOutcome::new(
            if covered > 0.0 {
                "covered>0"
            } else {
                "uncovered"
            },
            covered > 0.0,
        )
        .with_metric("coverage", covered)
        .with_metric("large_views", large_views.len() as f64)
        .with_budget(usage)
    });
}

fn promise_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<CycleParamLabel>>,
    budget: EnumerationBudget,
    radius: usize,
    r: u64,
    bound: &IdBound,
) {
    for (instance, expect) in [("yes", "accept"), ("no", "reject")] {
        let spec = CellSpec::new(
            format!("promise/r={r}/instance={instance}/alg=promise-id-decider"),
            [
                ("family", "cycle".to_string()),
                ("r", r.to_string()),
                ("instance", instance.to_string()),
                ("alg", "promise-id-decider".to_string()),
                ("expect", expect.to_string()),
            ],
        );
        let bound = bound.clone();
        plan.push(spec, move |_seed| {
            let labeled = match instance {
                "yes" => promise::yes_instance(r),
                _ => promise::no_instance(r, &bound, 1 << 20),
            }
            .expect("promise cycles construct for swept r");
            let n = labeled.node_count();
            // Identifiers start at 1 so the long cycle exhibits an id >= f(r).
            let input = Input::new(labeled, IdAssignment::consecutive_from(n, 1))
                .expect("cycles are connected with distinct ids");
            let accepted =
                decision::run_local(&input, &PromiseIdDecider::new(bound.clone())).accepted();
            let verdict = if accepted { "accept" } else { "reject" };
            CellOutcome::new(verdict, verdict == expect).with_metric("nodes", n as f64)
        });
    }

    // The radius-t ball of an n-cycle is a path (the same view the long
    // cycle shows) exactly when n >= 2t + 2; shorter cycles see themselves.
    super::promise_views_cell(plan, cache, budget, radius, r, bound);
}

/// Plans the layered-tree portion of `section2-sweep`: every sampled small
/// instance × identifier regime × algorithm, then — when `max_n` affords the
/// large instance — the large-instance cells and the Figure-1 coverage
/// measurement at every radius up to `coverage_radius`.  Shared with the
/// scenario DSL's `section2-trees` stanza (see [`crate::dsl`]); returns the
/// small-instance node count for empty-plan diagnostics.
pub(crate) fn layered_tree_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<Section2Label>>,
    config: &SweepConfig,
    max_roots: usize,
    coverage_radius: usize,
) -> Result<usize, String> {
    let budget = config.enumeration_budget();
    let params = Section2Params::new(1, IdBound::identity_plus(2))
        .map_err(|e| format!("section 2 parameters: {e}"))?;

    if params.small_instance_size() <= config.max_n {
        let roots: Vec<Coord> = params
            .small_instance_roots()
            .into_iter()
            .take(max_roots)
            .collect();
        for &root in &roots {
            for regime in REGIMES {
                // The structure verifier ignores identifiers: small
                // instances are locally consistent under every regime.
                tree_cell(
                    plan,
                    &params,
                    cache,
                    budget,
                    "small",
                    Some(root),
                    regime,
                    "verifier",
                    "accept",
                );
                // The Id-based decider also rejects when any id reaches
                // R(r); the shifted regime plants such ids everywhere.
                let expect = if regime == "shifted" {
                    "reject"
                } else {
                    "accept"
                };
                tree_cell(
                    plan,
                    &params,
                    cache,
                    budget,
                    "small",
                    Some(root),
                    regime,
                    "id-decider",
                    expect,
                );
            }
        }
    }

    if params.large_instance_size() <= config.max_n {
        for regime in REGIMES {
            // T_r is locally consistent (it is in P'), so the oblivious
            // verifier accepts it — the heart of "P not in LD*".
            tree_cell(
                plan, &params, cache, budget, "large", None, regime, "verifier", "accept",
            );
            // With n = |T_r| nodes, every regime hands some node an id
            // >= R(r), so the Id-based decider rejects.
            tree_cell(
                plan,
                &params,
                cache,
                budget,
                "large",
                None,
                regime,
                "id-decider",
                "reject",
            );
        }
        // Figure-1 coverage at every radius up to the sweep radius
        // (default 1; `--radius` raises it — radius 3 is where the
        // budgeted radius-3 machinery earns its keep).
        for radius in 0..=coverage_radius {
            coverage_cell(plan, &params, cache, budget, radius, max_roots);
        }
    }

    Ok(params.small_instance_size())
}

/// Plans the promise-cycle portion of `section2-sweep`: the yes/no decision
/// cells plus the indistinguishability views cell, for every `r` whose
/// no-instance (`3r`-cycle) fits `max_n`.  Shared with the scenario DSL's
/// `section2-promise` stanza.
pub(crate) fn promise_decider_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<CycleParamLabel>>,
    config: &SweepConfig,
    views_radius: usize,
) {
    let budget = config.enumeration_budget();
    // Promise cycles: the no-instance is the f(r) = 3r cycle, so the
    // pair fits the budget exactly when 3r <= max_n.
    let bound = IdBound::linear(3, 0);
    let max_r = (config.max_n as u64) / 3;
    for r in 3..=max_r {
        promise_cells(plan, cache, budget, views_radius, r, &bound);
    }
}

impl Scenario for Section2Sweep {
    fn name(&self) -> &str {
        "section2-sweep"
    }

    fn description(&self) -> &str {
        "Layered-tree family and promise cycles: id regimes x algorithms x sizes, with cached views"
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        let mut plan = Plan::new();
        let tree_cache = plan.share_cache::<Section2Label>();
        let promise_cache = plan.share_cache::<CycleParamLabel>();

        let small_size = layered_tree_cells(
            &mut plan,
            &tree_cache,
            config,
            MAX_ROOTS,
            config.radius_or(1),
        )?;
        promise_decider_cells(&mut plan, &promise_cache, config, config.radius_or(2));

        if plan.cells.is_empty() {
            return Err(format!(
                "max_n = {} leaves no section 2 cell; the smallest instances need {} nodes",
                config.max_n,
                small_size.min(9)
            ));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn default_budget_plans_a_rich_sweep() {
        let plan = Section2Sweep.plan(&SweepConfig::default()).unwrap();
        assert!(plan.cells.len() >= 100, "{} cells", plan.cells.len());
        assert_eq!(plan.caches.len(), 2);
    }

    #[test]
    fn sweep_passes_and_hits_the_cache() {
        let config = SweepConfig {
            max_n: 30,
            threads: 1,
            seed: 41,
            ..SweepConfig::default()
        };
        let report = executor::execute(&Section2Sweep, &config).unwrap();
        assert_eq!(report.panicked(), 0);
        assert_eq!(
            report.failed(),
            0,
            "failing cells: {:?}",
            report
                .cells
                .iter()
                .filter(|c| !c.passed())
                .map(|c| c.spec.id.clone())
                .collect::<Vec<_>>()
        );
        assert!(report.cache_hit_rate() > 0.0);
    }

    #[test]
    fn tiny_budget_is_rejected_with_a_message() {
        let config = SweepConfig {
            max_n: 3,
            threads: 1,
            seed: 1,
            ..SweepConfig::default()
        };
        let err = match Section2Sweep.plan(&config) {
            Err(message) => message,
            Ok(plan) => panic!("expected a planning error, got {} cells", plan.cells.len()),
        };
        assert!(err.contains("max_n"));
    }
}
