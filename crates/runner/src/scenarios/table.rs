//! `relationship-table`: the Section 1.1 summary table as four cells.
//!
//! Each cell of the (B / ¬B) × (C / ¬C) table is one sweep cell running its
//! witnessing experiment: the Section 2 layered trees for (B), the
//! Section 3 zoo for (C), and the Id-oblivious simulation `A*` for the free
//! quadrant where identifiers provably add nothing.

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::fragments::FragmentSource;
use ld_constructions::section2::{Section2Label, Section2Params, SmallInstancesProperty};
use ld_deciders::section2::{self as s2, IdBasedDecider, StructureVerifier};
use ld_deciders::section3 as s3;
use ld_graph::{generators, LabeledGraph};
use ld_local::cache::ViewCache;
use ld_local::decision::{self, check_decides};
use ld_local::simulation::ObliviousSimulation;
use ld_local::{FnLocal, IdBound, Input, Verdict, View};
use ld_turing::{zoo, Symbol};
use std::sync::{Arc, OnceLock};

const MAX_SMALL: usize = 8;

/// The relationship-table scenario.
pub struct RelationshipTable;

fn section2_separates(cache: &ViewCache<Section2Label>) -> bool {
    let params =
        Section2Params::new(1, IdBound::identity_plus(2)).expect("the r = 1 parameters are valid");
    let inputs = s2::experiment_inputs(&params, MAX_SMALL).expect("the r = 1 family constructs");
    let id_ok = check_decides(
        &SmallInstancesProperty::new(params.clone()),
        &IdBasedDecider::new(params.clone()),
        &inputs,
    )
    .all_correct();
    // The oblivious verifier fails as a decider for P: it must accept every
    // small instance yet also accepts T_r — which `experiment_inputs`
    // documents to be the last element.
    let verifier = StructureVerifier::new(params.clone());
    let verdicts: Vec<bool> = inputs
        .iter()
        .map(|input| decision::run_oblivious_cached(input, &verifier, cache).accepted())
        .collect();
    let (large_accepted, smalls) = verdicts.split_last().expect("inputs are nonempty");
    let oblivious_fails = smalls.iter().any(|accepted| !accepted) || *large_accepted;
    id_ok && oblivious_fails
}

fn section3_separates() -> bool {
    let machines = vec![
        zoo::halts_with_output(1, Symbol(0)),
        zoo::halts_with_output(6, Symbol(1)),
    ];
    let (id_ok, failing) =
        s3::theorem2_experiment(&machines, 1, 10_000, FragmentSource::WindowsAndDecoys, &[2])
            .expect("the quick zoo constructs");
    id_ok && !failing.is_empty()
}

fn free_quadrant_agrees() -> bool {
    // (¬B, ¬C): the Id-oblivious simulation A* reproduces the inner
    // Id-reading algorithm's decision, so no separation arises.
    let inner = FnLocal::new("ids-below-1000", 1, |view: &View<u8>| {
        Verdict::from_bool(view.max_id().unwrap_or(0) < 1_000)
    });
    let simulated = ObliviousSimulation::new(inner, 8);
    let labeled = LabeledGraph::uniform(generators::cycle(8), 0u8);
    let input = Input::with_consecutive_ids(labeled).expect("cycles are connected");
    decision::run_oblivious(&input, &simulated).accepted()
}

/// The two expensive witnessing experiments, computed at most once per plan
/// and shared by every quadrant cell that needs them (the B-C quadrant
/// conjoins both; rerunning them there would double the sweep's work).
/// `OnceLock` keeps the sharing deterministic: whichever cell runs first
/// computes the same value any other order would.
struct SharedWitnesses {
    cache: Arc<ViewCache<Section2Label>>,
    section2: OnceLock<bool>,
    section3: OnceLock<bool>,
}

impl SharedWitnesses {
    fn section2(&self) -> bool {
        *self
            .section2
            .get_or_init(|| section2_separates(&self.cache))
    }

    fn section3(&self) -> bool {
        *self.section3.get_or_init(section3_separates)
    }
}

fn table_cell(
    plan: &mut Plan,
    witnesses: &Arc<SharedWitnesses>,
    quadrant: &'static str,
    needs_b: bool,
    needs_c: bool,
    expect: &'static str,
) {
    let spec = CellSpec::new(
        format!("table/{quadrant}"),
        [
            ("quadrant", quadrant.to_string()),
            ("bounded_ids", needs_b.to_string()),
            ("computable", needs_c.to_string()),
            ("expect", expect.to_string()),
        ],
    );
    let witnesses = witnesses.clone();
    plan.push(spec, move |_seed| {
        let separated = match (needs_b, needs_c) {
            // Both switches on: either witness family separates.
            (true, true) => witnesses.section2() && witnesses.section3(),
            (true, false) => witnesses.section2(),
            (false, true) => witnesses.section3(),
            (false, false) => !free_quadrant_agrees(),
        };
        let verdict = if separated { "LD* != LD" } else { "LD* == LD" };
        CellOutcome::new(verdict, verdict == expect)
            .with_metric("separated", if separated { 1.0 } else { 0.0 })
    });
}

impl Scenario for RelationshipTable {
    fn name(&self) -> &str {
        "relationship-table"
    }

    fn description(&self) -> &str {
        "The Section 1.1 (B/~B) x (C/~C) summary table, one witnessing experiment per quadrant"
    }

    fn plan(&self, _config: &SweepConfig) -> Result<Plan, String> {
        let mut plan = Plan::new();
        let witnesses = Arc::new(SharedWitnesses {
            cache: plan.share_cache::<Section2Label>(),
            section2: OnceLock::new(),
            section3: OnceLock::new(),
        });
        table_cell(&mut plan, &witnesses, "B-C", true, true, "LD* != LD");
        table_cell(&mut plan, &witnesses, "B-notC", true, false, "LD* != LD");
        table_cell(&mut plan, &witnesses, "notB-C", false, true, "LD* != LD");
        table_cell(
            &mut plan,
            &witnesses,
            "notB-notC",
            false,
            false,
            "LD* == LD",
        );
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn all_four_quadrants_come_out_as_the_paper_states() {
        let report = executor::execute(&RelationshipTable, &SweepConfig::default()).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.panicked(), 0);
        assert_eq!(
            report.failed(),
            0,
            "failing cells: {:?}",
            report
                .cells
                .iter()
                .filter(|c| !c.passed())
                .map(|c| c.spec.id.clone())
                .collect::<Vec<_>>()
        );
        assert!(report.cache_hit_rate() > 0.0);
    }
}
