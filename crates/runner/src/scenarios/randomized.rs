//! `randomized-sweep`: Corollary 1, swept over machines.
//!
//! The randomised Id-oblivious decider replaces identifiers with coin
//! flips: yes-instances must always be accepted (one-sided error) while
//! no-instances slip through with probability at most `(1 - 1/sqrt(n))^n`.
//! Each cell estimates one acceptance rate with a seeded Monte-Carlo run, so
//! the whole sweep is reproducible despite the randomness.

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::fragments::FragmentSource;
use ld_deciders::randomized::{failure_probability_bound, RandomizedGmrDecider};
use ld_deciders::section3::gmr_input;
use ld_local::decision;
use ld_turing::zoo;
use ld_turing::Symbol;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SOURCE: FragmentSource = FragmentSource::WindowsAndDecoys;
const TRIALS: usize = 16;
const CAP: u64 = 1 << 20;

/// The randomised-decider sweep scenario.
pub struct RandomizedSweep;

fn rate_cell(plan: &mut Plan, k: u8, instance: &'static str) {
    let spec = CellSpec::new(
        format!("randomized/k={k}/instance={instance}"),
        [
            ("family", "gmr".to_string()),
            ("k", k.to_string()),
            ("instance", instance.to_string()),
            ("alg", "randomized-gmr".to_string()),
            ("trials", TRIALS.to_string()),
            (
                "expect",
                if instance == "yes" {
                    "always-accepted"
                } else {
                    "sometimes-rejected"
                }
                .to_string(),
            ),
        ],
    );
    plan.push(spec, move |seed| {
        let output = Symbol(if instance == "yes" { 0 } else { 1 });
        let machine = zoo::halts_with_output(k, output);
        let input = gmr_input(&machine.machine, 1, 10_000, SOURCE)
            .expect("halts_with_output machines halt within fuel");
        let mut rng = StdRng::seed_from_u64(seed);
        let decider = RandomizedGmrDecider::new(CAP);
        let rate = decision::estimate_acceptance(&input, &decider, TRIALS, &mut rng);
        let n = input.node_count();
        let (verdict, pass) = if instance == "yes" {
            // One-sided error: every trial on a yes-instance must accept.
            (
                if rate == 1.0 {
                    "always-accepted"
                } else {
                    "sometimes-rejected"
                },
                rate == 1.0,
            )
        } else {
            // A no-instance must be caught at least once in the trials
            // (the per-trial slip probability is far below 1/TRIALS here).
            (
                if rate < 1.0 {
                    "sometimes-rejected"
                } else {
                    "always-accepted"
                },
                rate < 1.0,
            )
        };
        CellOutcome::new(verdict, pass)
            .with_metric("acceptance_rate", rate)
            .with_metric("nodes", n as f64)
            .with_metric("failure_bound", failure_probability_bound(n))
    });
}

impl Scenario for RandomizedSweep {
    fn name(&self) -> &str {
        "randomized-sweep"
    }

    fn description(&self) -> &str {
        "Corollary 1: seeded Monte-Carlo acceptance rates of the randomised Id-oblivious decider"
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        let mut plan = Plan::new();
        // `max_n` scales how slow a machine (and hence how tall a table) is
        // swept; every budget keeps at least the two quickest.
        let ks: Vec<u8> = [2u8, 4, 8, 16]
            .into_iter()
            .enumerate()
            .filter(|&(i, k)| i < 2 || usize::from(k) * 4 <= config.max_n)
            .map(|(_, k)| k)
            .collect();
        for k in ks {
            rate_cell(&mut plan, k, "yes");
            rate_cell(&mut plan, k, "no");
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn rates_exhibit_one_sided_error() {
        let config = SweepConfig {
            max_n: 32,
            threads: 2,
            seed: 2026,
            ..SweepConfig::default()
        };
        let report = executor::execute(&RandomizedSweep, &config).unwrap();
        assert!(report.cells.len() >= 4);
        assert_eq!(report.panicked(), 0);
        assert_eq!(
            report.failed(),
            0,
            "failing cells: {:?}",
            report
                .cells
                .iter()
                .filter(|c| !c.passed())
                .map(|c| c.spec.id.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn cells_are_deterministic_in_the_seed() {
        let config = SweepConfig {
            max_n: 16,
            threads: 1,
            seed: 7,
            ..SweepConfig::default()
        };
        let a = executor::execute(&RandomizedSweep, &config).unwrap();
        let b = executor::execute(&RandomizedSweep, &config).unwrap();
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }
}
