//! `section2-sweep-r3`: the Section 2 view machinery at radius 3, budgeted.
//!
//! Radius 3 is where the paper's view-based separations get interesting —
//! and where naive per-radius extraction blows up combinatorially.  This
//! scenario is the radius-3 coverage-cell family the roadmap called for,
//! built on the budget-aware enumeration layer:
//!
//! * **Paths** — the smallest family with a closed-form distinct-view count
//!   (`radius + 1` classes once `n >= 2·radius + 2`), swept across sizes,
//!   plus cross-size coverage cells asserting the paradigmatic
//!   indistinguishability at radius 3.
//! * **Grids** — no closed form; instead each cell differentially checks
//!   the *incremental* multi-radius profile
//!   ([`distinct_views_by_radius_cached`], one extended BFS per node)
//!   against independent per-radius enumeration.
//! * **Layered trees** — Section 2 labels carry absolute coordinates, so
//!   every node of a small instance is labelled distinctly and the
//!   radius-3 distinct-view count must equal the node count exactly.
//! * **Promise cycles** — the yes/no pair is indistinguishable at radius
//!   `t` exactly when the announced length reaches `2t + 2`.
//!
//! Every cell runs under the sweep's [`SweepConfig::enumeration_budget`]:
//! exhaustion is reported (`budget.exhausted` in the v2 report schema) as
//! an explicit outcome rather than failing the cell, so a tight `--node-
//! budget` produces a clean, deterministic partial sweep instead of a
//! wall-time surprise.

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::section2::promise::CycleParamLabel;
use ld_constructions::section2::{Section2Label, Section2Params};
use ld_graph::{generators, LabeledGraph};
use ld_local::cache::ViewCache;
use ld_local::enumeration::{
    distinct_oblivious_views_of_budgeted_cached, distinct_views_by_radius_cached, EnumerationBudget,
};
use ld_local::IdBound;
use std::sync::Arc;

use super::coverage_pair;

/// How many small-instance roots the tree-family coverage cells sample
/// (also the DSL `layered-tree-views` stanza's `max-roots` default).
pub(crate) const MAX_ROOTS: usize = 8;

/// Step between swept path sizes (keeps the family to ~16 cells at the
/// default `max_n`; also the DSL `paths` stanza's `step` default).
pub(crate) const PATH_STEP: usize = 8;

/// The radius-3 Section 2 sweep scenario.
pub struct Section2SweepR3;

/// A uniform 0-labelled graph, the label regime of the structural families.
fn uniform(graph: ld_graph::Graph) -> LabeledGraph<u8> {
    LabeledGraph::uniform(graph, 0u8)
}

/// Distinct radius-`radius` views of an `n`-node path: one class per
/// distance-to-the-nearer-end in `0..radius`, plus the interior class —
/// `radius + 1` in total once both ends are out of a single view's reach.
fn expected_path_views(n: usize, radius: usize) -> Option<usize> {
    (n >= 2 * radius + 2).then_some(radius + 1)
}

/// Plans the closed-form path family: one distinct-view-count cell per
/// swept size, `step` apart.  Shared with `section2-sweep-xl`, which sweeps
/// the same family at larger sizes and strides.
pub(crate) fn path_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<u8>>,
    config: &SweepConfig,
    radius: usize,
    budget: EnumerationBudget,
    step: usize,
) {
    let mut n = 2 * radius + 2;
    while n <= config.max_n {
        let expected = expected_path_views(n, radius).expect("n starts at 2*radius + 2");
        let spec = CellSpec::new(
            format!("path/n={n}/radius={radius}/alg=distinct-views"),
            [
                ("family", "path".to_string()),
                ("n", n.to_string()),
                ("radius", radius.to_string()),
                ("alg", "distinct-views".to_string()),
                ("expect", format!("views={expected}")),
            ],
        );
        let cache = cache.clone();
        plan.push(spec, move |_seed| {
            let labeled = uniform(generators::path(n));
            let (views, usage) =
                distinct_oblivious_views_of_budgeted_cached(&labeled, radius, &cache, budget);
            if usage.exhausted {
                return CellOutcome::new("exhausted", true).with_budget(usage);
            }
            let verdict = format!("views={}", views.len());
            CellOutcome::new(verdict, views.len() == expected)
                .with_metric("nodes", n as f64)
                .with_metric("distinct_views", views.len() as f64)
                .with_budget(usage)
        });
        n += step.max(1);
    }
}

/// Plans the cross-size path coverage cells (the paradigmatic
/// indistinguishability).  Shared with `section2-sweep-xl`.
pub(crate) fn path_coverage_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<u8>>,
    config: &SweepConfig,
    radius: usize,
    budget: EnumerationBudget,
) {
    let small = 2 * radius + 2;
    let large = config.max_n;
    let mid = (small + large) / 2;
    let mut pairs = vec![(small, large)];
    if mid > small {
        pairs.push((mid, large));
    }
    for (a, b) in pairs {
        if a >= b {
            continue;
        }
        let spec = CellSpec::new(
            format!("path-coverage/small={a}/large={b}/radius={radius}"),
            [
                ("family", "path".to_string()),
                ("small", a.to_string()),
                ("large", b.to_string()),
                ("radius", radius.to_string()),
                ("expect", "indistinguishable".to_string()),
            ],
        );
        let cache = cache.clone();
        plan.push(spec, move |_seed| {
            let small = uniform(generators::path(a));
            let large = uniform(generators::path(b));
            // Both paths are long enough that every view of one occurs in
            // the other: the paradigmatic indistinguishability, at radius 3.
            let (forward, backward, usage) =
                match coverage_pair(&small, &large, radius, &cache, budget) {
                    Ok(result) => result,
                    Err(usage) => return CellOutcome::new("exhausted", true).with_budget(usage),
                };
            let merged = forward == 1.0 && backward == 1.0;
            let verdict = if merged {
                "indistinguishable"
            } else {
                "distinguishable"
            };
            CellOutcome::new(verdict, merged)
                .with_metric("coverage_large_in_small", forward)
                .with_metric("coverage_small_in_large", backward)
                .with_budget(usage)
        });
    }
}

/// Plans the grid incremental-profile differential cells.  Shared with
/// `section2-sweep-xl`.
pub(crate) fn grid_profile_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<u8>>,
    config: &SweepConfig,
    radius: usize,
    budget: EnumerationBudget,
) {
    let mut side = 3usize;
    while side * side <= config.max_n {
        let spec = CellSpec::new(
            format!("grid-profile/side={side}/radius={radius}"),
            [
                ("family", "grid".to_string()),
                ("side", side.to_string()),
                ("radius", radius.to_string()),
                ("alg", "incremental-profile".to_string()),
                ("expect", "profile-agrees".to_string()),
            ],
        );
        let cache = cache.clone();
        plan.push(spec, move |_seed| {
            let labeled = uniform(generators::grid(side, side));
            // One incrementally-extended BFS per node, all radii at once …
            let (profile, mut usage) =
                distinct_views_by_radius_cached(&labeled, radius, &cache, budget);
            if usage.exhausted {
                return CellOutcome::new("exhausted", true).with_budget(usage);
            }
            // … differentially checked against a fresh enumeration per
            // radius (grids have no closed-form view count at radius 3).
            let mut agrees = true;
            for (r, views) in profile.iter().enumerate() {
                let (reference, spent) = distinct_oblivious_views_of_budgeted_cached(
                    &labeled,
                    r,
                    &cache,
                    budget.after(&usage),
                );
                usage.absorb(&spent);
                if usage.exhausted {
                    return CellOutcome::new("exhausted", true).with_budget(usage);
                }
                agrees &= views == &reference;
            }
            let verdict = if agrees {
                "profile-agrees"
            } else {
                "profile-diverges"
            };
            let top = profile.last().map_or(0, Vec::len);
            CellOutcome::new(verdict, agrees)
                .with_metric("nodes", (side * side) as f64)
                .with_metric("distinct_views_top_radius", top as f64)
                .with_budget(usage)
        });
        side += 2;
    }
}

/// Plans the distinctly-labelled layered-tree cells.  Shared with
/// `section2-sweep-xl`.
pub(crate) fn tree_family_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<Section2Label>>,
    config: &SweepConfig,
    radius: usize,
    budget: EnumerationBudget,
    max_roots: usize,
) -> Result<(), String> {
    let params = Section2Params::new(1, IdBound::identity_plus(2))
        .map_err(|e| format!("section 2 parameters: {e}"))?;
    if params.small_instance_size() > config.max_n {
        return Ok(());
    }
    let roots = params.small_instance_roots();
    for (index, &root) in roots.iter().take(max_roots).enumerate() {
        let r = params.r();
        let spec = CellSpec::new(
            format!("tree/r={r}/distinct-views/instance={index}/radius={radius}"),
            [
                ("family", "layered-tree".to_string()),
                ("r", r.to_string()),
                ("instance", index.to_string()),
                ("radius", radius.to_string()),
                ("expect", "views=nodes".to_string()),
            ],
        );
        let params = params.clone();
        let cache = cache.clone();
        plan.push(spec, move |_seed| {
            let instance = params
                .small_instance(root)
                .expect("sampled roots anchor valid instances");
            let (views, usage) =
                distinct_oblivious_views_of_budgeted_cached(&instance, radius, &cache, budget);
            if usage.exhausted {
                return CellOutcome::new("exhausted", true).with_budget(usage);
            }
            // Section 2 labels carry absolute coordinates, so every node of
            // an instance is labelled distinctly — each centre's view is
            // distinguishable from every other's at any radius, and the
            // distinct-view count must equal the node count exactly.
            let nodes = instance.node_count();
            let ok = views.len() == nodes;
            CellOutcome::new(if ok { "views=nodes" } else { "views-collapsed" }, ok)
                .with_metric("nodes", nodes as f64)
                .with_metric("distinct_views", views.len() as f64)
                .with_budget(usage)
        });
    }
    Ok(())
}

/// Plans the promise-cycle yes/no view cells.  Shared with
/// `section2-sweep-xl`.
pub(crate) fn promise_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<CycleParamLabel>>,
    config: &SweepConfig,
    radius: usize,
    budget: EnumerationBudget,
) {
    let bound = IdBound::linear(3, 0);
    let max_r = (config.max_n as u64) / 3;
    for r in 3..=max_r {
        super::promise_views_cell(plan, cache, budget, radius, r, &bound);
    }
}

impl Scenario for Section2SweepR3 {
    fn name(&self) -> &str {
        "section2-sweep-r3"
    }

    fn description(&self) -> &str {
        "Radius-3 coverage cells: paths, grids, layered trees and promise cycles, under work budgets"
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        let radius = config.radius_or(3);
        let budget = config.enumeration_budget();
        let mut plan = Plan::new();
        let structural_cache = plan.share_cache::<u8>();
        let tree_cache = plan.share_cache::<Section2Label>();
        let promise_cache = plan.share_cache::<CycleParamLabel>();

        path_cells(
            &mut plan,
            &structural_cache,
            config,
            radius,
            budget,
            PATH_STEP,
        );
        path_coverage_cells(&mut plan, &structural_cache, config, radius, budget);
        grid_profile_cells(&mut plan, &structural_cache, config, radius, budget);
        tree_family_cells(&mut plan, &tree_cache, config, radius, budget, MAX_ROOTS)?;
        promise_cells(&mut plan, &promise_cache, config, radius, budget);

        if plan.cells.is_empty() {
            return Err(format!(
                "max_n = {} leaves no radius-{radius} cell; paths need {} nodes and \
                 promise cycles need 9",
                config.max_n,
                2 * radius + 2
            ));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn default_budget_plans_a_rich_radius3_sweep() {
        let plan = Section2SweepR3.plan(&SweepConfig::default()).unwrap();
        assert!(plan.cells.len() >= 60, "{} cells", plan.cells.len());
        assert_eq!(plan.caches.len(), 3);
    }

    #[test]
    fn radius3_sweep_passes_without_budget_pressure() {
        let config = SweepConfig {
            max_n: 48,
            threads: 2,
            seed: 7,
            ..SweepConfig::default()
        };
        let report = executor::execute(&Section2SweepR3, &config).unwrap();
        assert_eq!(report.panicked(), 0);
        assert_eq!(
            report.failed(),
            0,
            "failing cells: {:?}",
            report
                .cells
                .iter()
                .filter(|c| !c.passed())
                .map(|c| c.spec.id.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.exhausted(), 0);
        assert!(report.cache_hit_rate() > 0.0);
    }

    #[test]
    fn tight_node_budget_exhausts_cells_deterministically() {
        let config = SweepConfig {
            max_n: 48,
            threads: 1,
            seed: 7,
            node_budget: Some(64),
            ..SweepConfig::default()
        };
        let a = executor::execute(&Section2SweepR3, &config).unwrap();
        let b = executor::execute(&Section2SweepR3, &config).unwrap();
        assert!(a.exhausted() > 0, "a 64-node budget must exhaust r3 cells");
        assert_eq!(a.failed(), 0, "exhaustion is an outcome, not a failure");
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn radius_override_is_honoured() {
        let config = SweepConfig {
            max_n: 24,
            radius: Some(1),
            ..SweepConfig::default()
        };
        let report = executor::execute(&Section2SweepR3, &config).unwrap();
        assert_eq!(report.failed() + report.panicked(), 0);
        // Radius-1 paths have exactly 2 distinct views.
        let cell = report
            .cells
            .iter()
            .find(|c| c.spec.id.starts_with("path/") && c.spec.param("radius") == Some("1"))
            .expect("radius-1 path cells planned");
        assert_eq!(
            cell.outcome.as_ref().unwrap().metric("distinct_views"),
            Some(2.0)
        );
    }

    #[test]
    fn tiny_size_budget_is_rejected_with_a_message() {
        let err = match Section2SweepR3.plan(&SweepConfig {
            max_n: 3,
            ..SweepConfig::default()
        }) {
            Err(message) => message,
            Ok(plan) => panic!("expected a planning error, got {} cells", plan.cells.len()),
        };
        assert!(err.contains("max_n"));
    }
}
