//! `section2-sweep-xl`: the Section 2 radius-3 families at large N.
//!
//! Same cell families as `section2-sweep-r3` — closed-form paths,
//! cross-size path coverage, grid incremental-profile differentials,
//! distinctly-labelled layered trees and promise cycles — but sized for the
//! streaming pipeline's headroom: the default sweep is `--max-n 512`
//! (hundreds of cells, grids up to 22×22, promise cycles past length 500),
//! the path stride scales with `max_n` so the family stays dense without
//! planning thousands of near-identical cells, and **every** cell runs
//! under a budget: the explicit `--node-budget`/`--view-budget` when given,
//! otherwise the scenario default [`EnumerationBudget::scaled`], so a
//! pathological cell exhausts deterministically instead of stalling its
//! shard.  Exhaustion under the scaled default would itself be a finding —
//! the acceptance sweep completes with zero exhausted cells.

use super::section2_r3::{
    grid_profile_cells, path_cells, path_coverage_cells, promise_cells, tree_family_cells,
    MAX_ROOTS,
};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::section2::promise::CycleParamLabel;
use ld_constructions::section2::Section2Label;
use ld_local::enumeration::EnumerationBudget;

/// The swept path sizes step `max_n / XL_PATH_STRIDE_DIVISOR` apart (at
/// least 8), keeping the path family at roughly sixteen cells whatever the
/// scale.
const XL_PATH_STRIDE_DIVISOR: usize = 16;

/// The large-N Section 2 sweep scenario.
pub struct Section2SweepXl;

impl Scenario for Section2SweepXl {
    fn name(&self) -> &str {
        "section2-sweep-xl"
    }

    fn description(&self) -> &str {
        "Large-N radius-3 Section 2 families (paths, grids, trees, promise cycles), budget-capped by default"
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        let radius = config.radius_or(3);
        let budget = config.enumeration_budget_or(EnumerationBudget::scaled(config.max_n, radius));
        let step = (config.max_n / XL_PATH_STRIDE_DIVISOR).max(8);
        let mut plan = Plan::new();
        let structural_cache = plan.share_cache::<u8>();
        let tree_cache = plan.share_cache::<Section2Label>();
        let promise_cache = plan.share_cache::<CycleParamLabel>();

        path_cells(&mut plan, &structural_cache, config, radius, budget, step);
        path_coverage_cells(&mut plan, &structural_cache, config, radius, budget);
        grid_profile_cells(&mut plan, &structural_cache, config, radius, budget);
        tree_family_cells(&mut plan, &tree_cache, config, radius, budget, MAX_ROOTS)?;
        promise_cells(&mut plan, &promise_cache, config, radius, budget);

        if plan.cells.is_empty() {
            return Err(format!(
                "max_n = {} leaves no radius-{radius} cell; paths need {} nodes and \
                 promise cycles need 9",
                config.max_n,
                2 * radius + 2
            ));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn xl_plan_covers_every_family_at_512() {
        let config = SweepConfig {
            max_n: 512,
            ..SweepConfig::default()
        };
        let plan = Section2SweepXl.plan(&config).unwrap();
        assert!(plan.cells.len() >= 150, "{} cells", plan.cells.len());
        assert_eq!(plan.caches.len(), 3);
        for family in [
            "path/",
            "path-coverage/",
            "grid-profile/",
            "tree/",
            "promise/",
        ] {
            assert!(
                plan.cells.iter().any(|c| c.spec.id.starts_with(family)),
                "no {family} cells planned"
            );
        }
        // Grids reach 22×22 and promise cycles pass length 500 at this
        // scale — the envelope the streaming pipeline exists for.
        assert!(plan
            .cells
            .iter()
            .any(|c| c.spec.id.contains("grid-profile/side=21")));
        assert!(plan
            .cells
            .iter()
            .any(|c| c.spec.id.contains("promise/r=170")));
    }

    #[test]
    fn xl_cells_always_carry_a_budget_record() {
        let config = SweepConfig {
            max_n: 48,
            threads: 2,
            ..SweepConfig::default()
        };
        let report = executor::execute(&Section2SweepXl, &config).unwrap();
        assert_eq!(report.failed() + report.panicked(), 0);
        assert_eq!(report.exhausted(), 0, "the scaled default must be generous");
        for cell in &report.cells {
            let outcome = cell.outcome.as_ref().unwrap();
            assert!(
                outcome.budget.is_some(),
                "{} ran without a budget record",
                cell.spec.id
            );
        }
    }

    #[test]
    fn explicit_budget_flags_override_the_scaled_default() {
        let config = SweepConfig {
            max_n: 48,
            node_budget: Some(64),
            ..SweepConfig::default()
        };
        let a = executor::execute(&Section2SweepXl, &config).unwrap();
        let b = executor::execute(&Section2SweepXl, &config).unwrap();
        assert!(a.exhausted() > 0, "a 64-node budget must exhaust XL cells");
        assert_eq!(a.failed(), 0, "exhaustion is an outcome, not a failure");
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn tiny_size_budget_is_rejected_with_a_message() {
        let err = match Section2SweepXl.plan(&SweepConfig {
            max_n: 3,
            ..SweepConfig::default()
        }) {
            Err(message) => message,
            Ok(plan) => panic!("expected a planning error, got {} cells", plan.cells.len()),
        };
        assert!(err.contains("max_n"));
    }
}
