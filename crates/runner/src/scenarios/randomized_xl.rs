//! `randomized-sweep-xl`: Corollary 1 at scale, through the budgeted
//! enumeration path.
//!
//! The base `randomized-sweep` estimates one acceptance rate per cell and
//! stops there.  The XL variant widens the machine ladder (speeds up to
//! `k = 128` under the default `--max-n 512`) and makes each cell also
//! *measure* the instance it decided: the distinct radius-1 oblivious
//! views of the GMR execution-table graph, enumerated through the budgeted
//! path ([`distinct_oblivious_views_of_budgeted_cached`]) against a cache
//! shared across the whole sweep.  That pins two facts per cell — the
//! randomised decider's one-sided error *and* the view-collapse that makes
//! the table family hard for Id-oblivious deciders (distinct views grow
//! with the window alphabet, not with `n`) — while exercising exactly the
//! budget plumbing the streaming pipeline relies on for large cells.
//! Cells run under the explicit sweep budget when given, otherwise under
//! the scenario-default [`EnumerationBudget::scaled`].

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::fragments::FragmentSource;
use ld_constructions::section3::Section3Label;
use ld_deciders::randomized::{failure_probability_bound, RandomizedGmrDecider};
use ld_deciders::section3::gmr_input;
use ld_local::cache::ViewCache;
use ld_local::decision;
use ld_local::enumeration::{distinct_oblivious_views_of_budgeted_cached, EnumerationBudget};
use ld_turing::zoo;
use ld_turing::Symbol;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SOURCE: FragmentSource = FragmentSource::WindowsAndDecoys;
const TRIALS: usize = 16;
const CAP: u64 = 1 << 20;

/// The machine-speed ladder: `k`-step walkers up to the `max_n` gate
/// (`4k <= max_n`, always keeping the two quickest).
const SPEEDS: [u8; 8] = [2, 4, 8, 16, 24, 32, 64, 128];

/// The large-N randomised-decider sweep scenario.
pub struct RandomizedSweepXl;

fn xl_cell(
    plan: &mut Plan,
    cache: &Arc<ViewCache<Section3Label>>,
    budget: EnumerationBudget,
    k: u8,
    instance: &'static str,
) {
    let spec = CellSpec::new(
        format!("randomized-xl/k={k}/instance={instance}"),
        [
            ("family", "gmr".to_string()),
            ("k", k.to_string()),
            ("instance", instance.to_string()),
            ("alg", "randomized-gmr+budgeted-views".to_string()),
            ("trials", TRIALS.to_string()),
            (
                "expect",
                if instance == "yes" {
                    "always-accepted"
                } else {
                    "sometimes-rejected"
                }
                .to_string(),
            ),
        ],
    );
    let cache = cache.clone();
    plan.push(spec, move |seed| {
        let output = Symbol(if instance == "yes" { 0 } else { 1 });
        let machine = zoo::halts_with_output(k, output);
        let input = gmr_input(&machine.machine, 1, 10_000, SOURCE)
            .expect("halts_with_output machines halt within fuel");
        let mut rng = StdRng::seed_from_u64(seed);
        let decider = RandomizedGmrDecider::new(CAP);
        let rate = decision::estimate_acceptance(&input, &decider, TRIALS, &mut rng);
        let n = input.node_count();

        // The budgeted enumeration path: measure the instance's distinct
        // radius-1 views under the cell budget.  Exhaustion is an explicit
        // outcome, never a stall.
        let (views, usage) =
            distinct_oblivious_views_of_budgeted_cached(input.labeled(), 1, &cache, budget);
        if usage.exhausted {
            return CellOutcome::new("exhausted", true)
                .with_metric("acceptance_rate", rate)
                .with_budget(usage);
        }

        let (verdict, rate_ok) = if instance == "yes" {
            // One-sided error: every trial on a yes-instance must accept.
            (
                if rate == 1.0 {
                    "always-accepted"
                } else {
                    "sometimes-rejected"
                },
                rate == 1.0,
            )
        } else {
            // A no-instance must be caught at least once in the trials
            // (the per-trial slip probability is far below 1/TRIALS here).
            (
                if rate < 1.0 {
                    "sometimes-rejected"
                } else {
                    "always-accepted"
                },
                rate < 1.0,
            )
        };
        // Execution tables wallpaper the same windows: the distinct-view
        // count must collapse far below the node count.
        let views_collapse = views.len() < n;
        CellOutcome::new(verdict, rate_ok && views_collapse)
            .with_metric("acceptance_rate", rate)
            .with_metric("nodes", n as f64)
            .with_metric("distinct_views", views.len() as f64)
            .with_metric("failure_bound", failure_probability_bound(n))
            .with_budget(usage)
    });
}

impl Scenario for RandomizedSweepXl {
    fn name(&self) -> &str {
        "randomized-sweep-xl"
    }

    fn description(&self) -> &str {
        "Corollary 1 at scale: Monte-Carlo acceptance plus budgeted view enumeration per GMR instance"
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        let budget = config.enumeration_budget_or(EnumerationBudget::scaled(config.max_n, 1));
        let mut plan = Plan::new();
        let cache = plan.share_cache::<Section3Label>();
        let ks: Vec<u8> = SPEEDS
            .into_iter()
            .enumerate()
            .filter(|&(i, k)| i < 2 || usize::from(k) * 4 <= config.max_n)
            .map(|(_, k)| k)
            .collect();
        for k in ks {
            xl_cell(&mut plan, &cache, budget, k, "yes");
            xl_cell(&mut plan, &cache, budget, k, "no");
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn xl_ladder_scales_with_max_n() {
        let small = RandomizedSweepXl
            .plan(&SweepConfig {
                max_n: 16,
                ..SweepConfig::default()
            })
            .unwrap();
        assert_eq!(small.cells.len(), 4); // only the always-kept k = 2, 4
        let xl = RandomizedSweepXl
            .plan(&SweepConfig {
                max_n: 512,
                ..SweepConfig::default()
            })
            .unwrap();
        assert_eq!(xl.cells.len(), 16); // the full ladder, both instances
        assert_eq!(xl.caches.len(), 1);
    }

    #[test]
    fn rates_and_view_collapse_hold_across_the_ladder() {
        let config = SweepConfig {
            max_n: 64,
            threads: 2,
            seed: 2026,
            ..SweepConfig::default()
        };
        let report = executor::execute(&RandomizedSweepXl, &config).unwrap();
        assert!(report.cells.len() >= 8);
        assert_eq!(report.panicked(), 0);
        assert_eq!(
            report.failed(),
            0,
            "failing cells: {:?}",
            report
                .cells
                .iter()
                .filter(|c| !c.passed())
                .map(|c| c.spec.id.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.exhausted(), 0, "the scaled default must be generous");
        for cell in &report.cells {
            let outcome = cell.outcome.as_ref().unwrap();
            assert!(outcome.budget.is_some(), "{}", cell.spec.id);
            assert!(
                outcome.metric("distinct_views").unwrap() < outcome.metric("nodes").unwrap(),
                "{} views did not collapse",
                cell.spec.id
            );
        }
    }

    #[test]
    fn tight_view_budget_exhausts_deterministically() {
        let config = SweepConfig {
            max_n: 16,
            seed: 7,
            view_budget: Some(2),
            ..SweepConfig::default()
        };
        let a = executor::execute(&RandomizedSweepXl, &config).unwrap();
        let b = executor::execute(&RandomizedSweepXl, &config).unwrap();
        assert!(a.exhausted() > 0, "a 2-view budget must exhaust GMR cells");
        assert_eq!(a.failed(), 0);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }
}
