//! `section3-sweep`: the computability separation, swept over the machine
//! zoo.
//!
//! Cells cover the execution-table family `G(M, r)`: the two-stage
//! identifier-reading decider must match ground truth machine by machine,
//! and fuel-bounded Id-oblivious candidates must err somewhere on the zoo
//! (Theorem 2's mechanised content).  Oblivious verdicts run through a
//! shared canonical-view cache — execution tables are wallpapered with
//! repeated windows, which is precisely what the cache collapses.

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario, SweepConfig};
use ld_constructions::fragments::FragmentSource;
use ld_constructions::section3::Section3Label;
use ld_deciders::section3::{gmr_input, FuelBoundedObliviousCandidate, TwoStageIdDecider};
use ld_local::cache::ViewCache;
use ld_local::decision;
use ld_turing::zoo::{self, MachineSpec};
use std::sync::Arc;

const SOURCE: FragmentSource = FragmentSource::WindowsAndDecoys;
const RADIUS: u32 = 1;
const FUEL: u64 = 10_000;

/// The Section 3 sweep scenario.
pub struct Section3Sweep;

fn halting_zoo(max_n: usize) -> Vec<MachineSpec> {
    // `max_n` scales the zoo breadth: slow machines produce tall execution
    // tables, so a small budget keeps to the quick ones.
    let budget = max_n as u64;
    let mut machines: Vec<MachineSpec> = zoo::output_zero_zoo()
        .into_iter()
        .chain(zoo::output_one_zoo())
        .filter(|spec| spec.truth.steps().is_some_and(|steps| steps <= budget))
        .collect();
    machines.sort_by(|a, b| a.machine.name().cmp(b.machine.name()));
    machines
}

fn id_decider_cell(plan: &mut Plan, spec_m: &MachineSpec) {
    let expect = if spec_m.in_l0() { "accept" } else { "reject" };
    let name = spec_m.machine.name().to_string();
    let spec = CellSpec::new(
        format!("gmr/machine={name}/alg=two-stage-id"),
        [
            ("family", "gmr".to_string()),
            ("machine", name),
            ("alg", "two-stage-id".to_string()),
            ("expect", expect.to_string()),
        ],
    );
    let machine = spec_m.machine.clone();
    plan.push(spec, move |_seed| {
        let input = gmr_input(&machine, RADIUS, FUEL, SOURCE)
            .expect("zoo machines halt within the sweep fuel");
        let accepted = decision::run_local(&input, &TwoStageIdDecider::new(FUEL)).accepted();
        let verdict = if accepted { "accept" } else { "reject" };
        CellOutcome::new(verdict, verdict == expect).with_metric("nodes", input.node_count() as f64)
    });
}

fn candidate_cell(
    plan: &mut Plan,
    cache: &Arc<ViewCache<Section3Label>>,
    machines: &[MachineSpec],
    fuel: u64,
) {
    let spec = CellSpec::new(
        format!("gmr/candidate-fuel={fuel}"),
        [
            ("family", "gmr".to_string()),
            ("alg", format!("oblivious-fuel-{fuel}")),
            ("expect", "errs".to_string()),
        ],
    );
    let machines = machines.to_vec();
    let cache = cache.clone();
    plan.push(spec, move |_seed| {
        let candidate = FuelBoundedObliviousCandidate::new(fuel);
        let mut errors = 0usize;
        for spec_m in &machines {
            let input = gmr_input(&spec_m.machine, RADIUS, FUEL, SOURCE)
                .expect("zoo machines halt within the sweep fuel");
            let accepted = decision::run_oblivious_cached(&input, &candidate, &cache).accepted();
            if accepted != spec_m.in_l0() {
                errors += 1;
            }
        }
        // A fuel-starved candidate cannot tell long tables from decoys; it
        // must err somewhere on a zoo whose running times exceed its fuel.
        let verdict = if errors > 0 { "errs" } else { "decides" };
        CellOutcome::new(verdict, verdict == "errs")
            .with_metric("errors", errors as f64)
            .with_metric("machines", machines.len() as f64)
    });
}

impl Scenario for Section3Sweep {
    fn name(&self) -> &str {
        "section3-sweep"
    }

    fn description(&self) -> &str {
        "Execution-table family G(M,r) over the machine zoo: id decider vs fuel-bounded candidates"
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        let machines = halting_zoo(config.max_n);
        if machines.is_empty() {
            return Err(format!(
                "max_n = {} admits no zoo machine (the quickest halts in 1 step)",
                config.max_n
            ));
        }
        let mut plan = Plan::new();
        let cache = plan.share_cache::<Section3Label>();
        for spec_m in &machines {
            id_decider_cell(&mut plan, spec_m);
        }
        for fuel in [1u64, 2, 4] {
            // The "must err" expectation only holds when the zoo actually
            // contains a machine outrunning the candidate's fuel.
            let outrun = machines
                .iter()
                .any(|m| m.truth.steps().is_some_and(|steps| steps > fuel));
            if outrun {
                candidate_cell(&mut plan, &cache, &machines, fuel);
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;

    #[test]
    fn sweep_confirms_theorem_2_on_the_quick_zoo() {
        let config = SweepConfig {
            max_n: 24,
            threads: 2,
            seed: 9,
            ..SweepConfig::default()
        };
        let report = executor::execute(&Section3Sweep, &config).unwrap();
        assert!(report.cells.len() >= 5);
        assert_eq!(report.panicked(), 0);
        assert_eq!(
            report.failed(),
            0,
            "failing cells: {:?}",
            report
                .cells
                .iter()
                .filter(|c| !c.passed())
                .map(|c| c.spec.id.clone())
                .collect::<Vec<_>>()
        );
        assert!(report.cache_hit_rate() > 0.0);
    }
}
