//! The built-in scenarios and their registry.

mod pyramid;
mod randomized;
mod randomized_xl;
mod section2;
mod section2_r3;
mod section2_xl;
mod section3;
mod table;

pub(crate) use section2::{layered_tree_cells, promise_decider_cells, MAX_ROOTS as TREE_MAX_ROOTS};
pub(crate) use section2_r3::{
    grid_profile_cells, path_cells, path_coverage_cells, promise_cells as promise_views_only_cells,
    tree_family_cells, MAX_ROOTS as R3_TREE_MAX_ROOTS, PATH_STEP,
};

pub use pyramid::PyramidSweep;
pub use randomized::RandomizedSweep;
pub use randomized_xl::RandomizedSweepXl;
pub use section2::Section2Sweep;
pub use section2_r3::Section2SweepR3;
pub use section2_xl::Section2SweepXl;
pub use section3::Section3Sweep;
pub use table::RelationshipTable;

use crate::cell::{CellOutcome, CellSpec};
use crate::scenario::{Plan, Scenario};
use ld_constructions::section2::promise::{self, CycleParamLabel};
use ld_graph::LabeledGraph;
use ld_local::cache::ViewCache;
use ld_local::enumeration::{
    coverage_cached, distinct_oblivious_views_of_budgeted_cached, EnumerationBudget,
};
use ld_local::{BudgetUsage, IdBound};
use std::hash::Hash;
use std::sync::Arc;

/// Enumerates two instances under one shared budget — skipping the second
/// entirely once the first exhausts, so no capped work is thrown away — and
/// measures their bidirectional view coverage.  `Err` carries the usage of
/// an exhausted run; `Ok` is `(coverage of b in a, coverage of a in b,
/// usage)`.  Shared by every scenario cell that compares two instances'
/// views (promise-cycle pairs, path coverage).
#[allow(clippy::type_complexity)]
pub(crate) fn coverage_pair<L: Clone + Eq + Hash + Send + Sync>(
    a: &LabeledGraph<L>,
    b: &LabeledGraph<L>,
    radius: usize,
    cache: &ViewCache<L>,
    budget: EnumerationBudget,
) -> Result<(f64, f64, BudgetUsage), BudgetUsage> {
    let (a_views, mut usage) =
        distinct_oblivious_views_of_budgeted_cached(a, radius, cache, budget);
    if usage.exhausted {
        return Err(usage);
    }
    let (b_views, spent) =
        distinct_oblivious_views_of_budgeted_cached(b, radius, cache, budget.after(&usage));
    usage.absorb(&spent);
    if usage.exhausted {
        return Err(usage);
    }
    let forward = coverage_cached(&b_views, &a_views, cache);
    let backward = coverage_cached(&a_views, &b_views, cache);
    Ok((forward, backward, usage))
}

/// Plans the promise-cycle *views* cell shared by `section2-sweep` and
/// `section2-sweep-r3`: the yes-instance (`r`-cycle) and no-instance
/// (`f(r)`-cycle) are indistinguishable at view radius `t` exactly when
/// `r >= 2t + 2` — the radius-`t` ball of an `n`-cycle is a path (the view
/// the long cycle shows) iff `n >= 2t + 2`; shorter cycles see themselves
/// whole.
pub(crate) fn promise_views_cell(
    plan: &mut Plan,
    cache: &Arc<ViewCache<CycleParamLabel>>,
    budget: EnumerationBudget,
    radius: usize,
    r: u64,
    bound: &IdBound,
) {
    let expect = if r >= 2 * radius as u64 + 2 {
        "indistinguishable"
    } else {
        "distinguishable"
    };
    let spec = CellSpec::new(
        format!("promise/r={r}/views/radius={radius}"),
        [
            ("family", "cycle".to_string()),
            ("r", r.to_string()),
            ("instance", "views".to_string()),
            ("radius", radius.to_string()),
            ("expect", expect.to_string()),
        ],
    );
    let bound = bound.clone();
    let cache = cache.clone();
    plan.push(spec, move |_seed| {
        let yes = promise::yes_instance(r).expect("promise cycles construct for swept r");
        let no =
            promise::no_instance(r, &bound, 1 << 20).expect("promise cycles construct for swept r");
        let (forward, backward, usage) = match coverage_pair(&yes, &no, radius, &cache, budget) {
            Ok(result) => result,
            Err(usage) => return CellOutcome::new("exhausted", true).with_budget(usage),
        };
        let merged = forward == 1.0 && backward == 1.0;
        let verdict = if merged {
            "indistinguishable"
        } else {
            "distinguishable"
        };
        CellOutcome::new(verdict, verdict == expect)
            .with_metric("coverage_no_in_yes", forward)
            .with_metric("coverage_yes_in_no", backward)
            .with_budget(usage)
    });
}

/// Every built-in scenario, in `ldx list` order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Section2Sweep),
        Box::new(Section2SweepR3),
        Box::new(Section2SweepXl),
        Box::new(Section3Sweep),
        Box::new(PyramidSweep),
        Box::new(RandomizedSweep),
        Box::new(RandomizedSweepXl),
        Box::new(RelationshipTable),
    ]
}

/// Looks a scenario up by its `ldx` name.
pub fn find(name: &str) -> Option<Box<dyn Scenario>> {
    all().into_iter().find(|s| s.name() == name)
}

/// The machine-readable registry listing shared by `ldx list --json` and
/// the service's `GET /scenarios` endpoint: one `{name, description}`
/// object per scenario, in `ldx list` order.
pub fn listing_json() -> crate::json::Json {
    use crate::json::Json;
    Json::object().set("schema", "ld-runner/scenarios/v1").set(
        "scenarios",
        Json::Arr(
            all()
                .iter()
                .map(|s| {
                    Json::object()
                        .set("name", s.name())
                        .set("description", s.description())
                })
                .collect(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let scenarios = all();
        assert_eq!(scenarios.len(), 8);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert!(find("section2-sweep").is_some());
        assert!(find("section2-sweep-r3").is_some());
        assert!(find("section2-sweep-xl").is_some());
        assert!(find("randomized-sweep-xl").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn descriptions_are_one_liners() {
        for scenario in all() {
            assert!(!scenario.description().is_empty());
            assert!(!scenario.description().contains('\n'));
        }
    }

    #[test]
    fn listing_json_mirrors_the_registry_and_round_trips() {
        let rendered = listing_json().render();
        let parsed = crate::json::Json::parse(&rendered).expect("listing must parse");
        assert_eq!(
            parsed.get("schema").and_then(crate::json::Json::as_str),
            Some("ld-runner/scenarios/v1")
        );
        let entries = parsed
            .get("scenarios")
            .and_then(crate::json::Json::as_arr)
            .expect("scenarios array");
        let registry = all();
        assert_eq!(entries.len(), registry.len());
        for (entry, scenario) in entries.iter().zip(&registry) {
            assert_eq!(
                entry.get("name").and_then(crate::json::Json::as_str),
                Some(scenario.name())
            );
            assert_eq!(
                entry.get("description").and_then(crate::json::Json::as_str),
                Some(scenario.description())
            );
        }
    }
}
