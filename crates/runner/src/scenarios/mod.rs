//! The built-in scenarios and their registry.

mod pyramid;
mod randomized;
mod section2;
mod section3;
mod table;

pub use pyramid::PyramidSweep;
pub use randomized::RandomizedSweep;
pub use section2::Section2Sweep;
pub use section3::Section3Sweep;
pub use table::RelationshipTable;

use crate::scenario::Scenario;

/// Every built-in scenario, in `ldx list` order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Section2Sweep),
        Box::new(Section3Sweep),
        Box::new(PyramidSweep),
        Box::new(RandomizedSweep),
        Box::new(RelationshipTable),
    ]
}

/// Looks a scenario up by its `ldx` name.
pub fn find(name: &str) -> Option<Box<dyn Scenario>> {
    all().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let scenarios = all();
        assert_eq!(scenarios.len(), 5);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        assert!(find("section2-sweep").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn descriptions_are_one_liners() {
        for scenario in all() {
            assert!(!scenario.description().is_empty());
            assert!(!scenario.description().contains('\n'));
        }
    }
}
