//! Reading reports back: a version-compatible summary of a persisted run.
//!
//! `ldx` has been writing deterministic run records since schema
//! `ld-runner/report/v1`.  v2 added the budget/outcome model (per-cell
//! `budget` objects, an `exhausted` summary counter, and
//! `radius`/`node_budget`/`view_budget` in the config) without changing any
//! v1 field; v3 restructured the document for streaming — the counters
//! moved from the top level into a trailing `summary` object (written
//! *after* the cells, so the file is an append-only stream) and the config
//! gained `shard_size`.  [`ReportSummary::from_json`] reads **all three**
//! versions, mapping fields an older schema lacks to their defaults, so
//! tooling that compares runs across schema bumps — trend dashboards,
//! `ldx diff`, CI gates over archived reports — needs no per-version code.
//!
//! The reader accepts the deterministic document and the full `to_json`
//! report alike (the `perf` section is simply ignored).

use crate::json::Json;
use ld_local::enumeration::BudgetUsage;

/// The schema identifier of PR 2's legacy reports.
pub const SCHEMA_V1: &str = "ld-runner/report/v1";
/// The schema identifier of the budgeted (pre-streaming) reports.
pub const SCHEMA_V2: &str = "ld-runner/report/v2";
/// The streaming schema identifier written by this version of the runner.
pub const SCHEMA_V3: &str = "ld-runner/report/v3";

/// One cell of a persisted report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell's stable identifier.
    pub id: String,
    /// The per-cell seed the executor derived.
    pub seed: u64,
    /// `"completed"` or `"panicked"`.
    pub status: String,
    /// The verdict token, for completed cells.
    pub verdict: Option<String>,
    /// Whether the verdict matched expectation (`false` for panics).
    pub pass: bool,
    /// The budget record, for budgeted v2 cells (`None` in v1 documents and
    /// for unbudgeted cells).
    pub budget: Option<BudgetUsage>,
}

/// A persisted run report, read back version-compatibly.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    /// The schema the document declared ([`SCHEMA_V1`] or [`SCHEMA_V2`]).
    pub schema: String,
    /// Scenario name.
    pub scenario: String,
    /// The sweep's size budget.
    pub max_n: u64,
    /// The master seed.
    pub seed: u64,
    /// The radius override, when one was set (always `None` in v1).
    pub radius: Option<u64>,
    /// The per-cell node budget, when one was set (always `None` in v1).
    pub node_budget: Option<u64>,
    /// The per-cell view budget, when one was set (always `None` in v1).
    pub view_budget: Option<u64>,
    /// The streaming shard size (always `None` in v1/v2, which predate the
    /// sharded pipeline).
    pub shard_size: Option<u64>,
    /// Summary counters, as recorded in the document.
    pub cell_count: u64,
    /// Cells that completed with a matching verdict.
    pub passed: u64,
    /// Cells that completed with a mismatched verdict.
    pub failed: u64,
    /// Cells that panicked.
    pub panicked: u64,
    /// Cells whose work budget was exhausted (`0` in v1 documents, which
    /// predate budgets).
    pub exhausted: u64,
    /// Per-cell records, in report order.
    pub cells: Vec<CellSummary>,
}

/// A required field of a known type, with a path-ish error message.
fn required_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

/// An optional integer field: absent keys and explicit `null` both read as
/// `None` (v1 documents omit the key entirely; v2 writes `null`).
fn optional_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

fn parse_cell(cell: &Json) -> Result<CellSummary, String> {
    let id = cell
        .get("id")
        .and_then(Json::as_str)
        .ok_or("cell missing 'id'")?
        .to_string();
    let status = cell
        .get("status")
        .and_then(Json::as_str)
        .ok_or("cell missing 'status'")?
        .to_string();
    let budget = match cell.get("budget") {
        Some(budget) => Some(BudgetUsage {
            nodes_visited: required_u64(budget, "nodes_visited")?,
            views_materialized: required_u64(budget, "views_materialized")?,
            exhausted: budget
                .get("exhausted")
                .and_then(Json::as_bool)
                .ok_or("budget missing 'exhausted'")?,
        }),
        None => None,
    };
    Ok(CellSummary {
        seed: required_u64(cell, "seed")?,
        verdict: cell.get("verdict").and_then(Json::as_str).map(String::from),
        pass: cell.get("pass").and_then(Json::as_bool).unwrap_or(false),
        id,
        status,
        budget,
    })
}

impl ReportSummary {
    /// Parses a persisted report (deterministic or full), accepting both
    /// the v1 and v2 schemas.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, an unknown schema identifier,
    /// or a missing required field.
    pub fn from_json(text: &str) -> Result<ReportSummary, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema'")?
            .to_string();
        if schema != SCHEMA_V1 && schema != SCHEMA_V2 && schema != SCHEMA_V3 {
            return Err(format!("unknown report schema '{schema}'"));
        }
        let config = doc.get("config").ok_or("missing 'config'")?;
        // v1/v2 carry the counters at the top level; v3 nests them in a
        // trailing `summary` object.  Either way the names are identical.
        let counters = if schema == SCHEMA_V3 {
            doc.get("summary").ok_or("missing 'summary'")?
        } else {
            &doc
        };
        let cells = doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing 'cells'")?
            .iter()
            .map(parse_cell)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReportSummary {
            scenario: doc
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("missing 'scenario'")?
                .to_string(),
            max_n: required_u64(config, "max_n")?,
            seed: required_u64(config, "seed")?,
            radius: optional_u64(config, "radius"),
            node_budget: optional_u64(config, "node_budget"),
            view_budget: optional_u64(config, "view_budget"),
            shard_size: optional_u64(config, "shard_size"),
            cell_count: required_u64(counters, "cell_count")?,
            passed: required_u64(counters, "passed")?,
            failed: required_u64(counters, "failed")?,
            panicked: required_u64(counters, "panicked")?,
            // v1 predates budgets: absent means no cell could have been
            // budgeted, so zero is exact, not a guess.
            exhausted: optional_u64(counters, "exhausted").unwrap_or(0),
            schema,
            cells,
        })
    }

    /// `true` when the document used the legacy v1 schema.
    pub fn is_v1(&self) -> bool {
        self.schema == SCHEMA_V1
    }

    /// The numeric schema version (1, 2 or 3).
    pub fn schema_version(&self) -> u32 {
        match self.schema.as_str() {
            s if s == SCHEMA_V1 => 1,
            s if s == SCHEMA_V2 => 2,
            _ => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellOutcome, CellResult, CellSpec};
    use crate::report::RunReport;
    use crate::scenario::SweepConfig;
    use ld_local::cache::CacheStats;
    use std::time::Duration;

    /// A verbatim v1 document, as PR 2's reporter wrote it.
    const V1_REPORT: &str = r#"{
  "schema": "ld-runner/report/v1",
  "scenario": "section2-sweep",
  "config": {
    "max_n": 24,
    "seed": 1905683
  },
  "cell_count": 2,
  "passed": 1,
  "failed": 0,
  "panicked": 1,
  "cells": [
    {
      "id": "tree/r=1/small=0.0/ids=consecutive/alg=verifier",
      "params": {
        "family": "layered-tree"
      },
      "seed": 12157922279433856850,
      "status": "completed",
      "verdict": "accept",
      "pass": true,
      "metrics": {
        "nodes": 4
      }
    },
    {
      "id": "tree/r=1/small=0.1/ids=consecutive/alg=verifier",
      "params": {},
      "seed": 3,
      "status": "panicked",
      "error": "boom"
    }
  ]
}
"#;

    #[test]
    fn v1_reports_still_parse() {
        let summary = ReportSummary::from_json(V1_REPORT).unwrap();
        assert!(summary.is_v1());
        assert_eq!(summary.scenario, "section2-sweep");
        assert_eq!(summary.max_n, 24);
        assert_eq!(summary.seed, 1905683);
        assert_eq!(summary.radius, None);
        assert_eq!(summary.node_budget, None);
        assert_eq!(summary.exhausted, 0);
        assert_eq!(summary.cells.len(), 2);
        assert_eq!(summary.cells[0].seed, 12157922279433856850);
        assert_eq!(summary.cells[0].verdict.as_deref(), Some("accept"));
        assert!(summary.cells[0].pass);
        assert_eq!(summary.cells[0].budget, None);
        assert_eq!(summary.cells[1].status, "panicked");
        assert!(!summary.cells[1].pass);
    }

    /// A verbatim v2 document, as PR 4's reporter wrote it (counters at the
    /// top level, no `shard_size`).
    const V2_REPORT: &str = r#"{
  "schema": "ld-runner/report/v2",
  "scenario": "section2-sweep-r3",
  "config": {
    "max_n": 16,
    "seed": 1905683,
    "radius": 3,
    "node_budget": 512,
    "view_budget": null
  },
  "cell_count": 1,
  "passed": 1,
  "failed": 0,
  "panicked": 0,
  "exhausted": 1,
  "cells": [
    {
      "id": "a/one",
      "params": {
        "n": "8"
      },
      "seed": 11,
      "status": "completed",
      "verdict": "exhausted",
      "pass": true,
      "metrics": {},
      "budget": {
        "exhausted": true,
        "nodes_visited": 512,
        "views_materialized": 9
      }
    }
  ]
}
"#;

    #[test]
    fn v2_reports_still_parse() {
        let summary = ReportSummary::from_json(V2_REPORT).unwrap();
        assert_eq!(summary.schema, SCHEMA_V2);
        assert_eq!(summary.schema_version(), 2);
        assert_eq!(summary.radius, Some(3));
        assert_eq!(summary.node_budget, Some(512));
        assert_eq!(summary.view_budget, None);
        assert_eq!(summary.shard_size, None);
        assert_eq!(summary.exhausted, 1);
        let budget = summary.cells[0].budget.unwrap();
        assert!(budget.exhausted);
        assert_eq!(budget.nodes_visited, 512);
    }

    #[test]
    fn v3_reports_roundtrip_through_the_reader() {
        let cells = vec![CellResult {
            spec: CellSpec::new("a/one", [("n", "8".to_string())]),
            seed: 11,
            outcome: Ok(
                CellOutcome::new("exhausted", true).with_budget(BudgetUsage {
                    nodes_visited: 512,
                    views_materialized: 9,
                    exhausted: true,
                }),
            ),
            wall: Duration::from_micros(50),
        }];
        let report = RunReport::new(
            "sample",
            SweepConfig {
                max_n: 16,
                radius: Some(3),
                node_budget: Some(512),
                ..SweepConfig::default()
            },
            cells,
            Duration::from_millis(1),
            CacheStats::default(),
        );
        // Both renderings parse; the perf section is ignored.
        for text in [report.deterministic_json(), report.to_json()] {
            let summary = ReportSummary::from_json(&text).unwrap();
            assert_eq!(summary.schema, SCHEMA_V3);
            assert_eq!(summary.schema_version(), 3);
            assert_eq!(summary.radius, Some(3));
            assert_eq!(summary.node_budget, Some(512));
            assert_eq!(summary.view_budget, None);
            assert_eq!(summary.shard_size, Some(16));
            assert_eq!(summary.cell_count, 1);
            assert_eq!(summary.passed, 1);
            assert_eq!(summary.exhausted, 1);
            let budget = summary.cells[0].budget.unwrap();
            assert!(budget.exhausted);
            assert_eq!(budget.nodes_visited, 512);
            assert_eq!(budget.views_materialized, 9);
        }
    }

    #[test]
    fn unknown_schema_and_malformed_documents_are_rejected() {
        assert!(ReportSummary::from_json("{}").is_err());
        assert!(ReportSummary::from_json("not json").is_err());
        let unknown = V1_REPORT.replace("report/v1", "report/v999");
        let err = ReportSummary::from_json(&unknown).unwrap_err();
        assert!(err.contains("v999"), "{err}");
        let truncated = V1_REPORT.replace("\"cell_count\": 2,", "");
        let err = ReportSummary::from_json(&truncated).unwrap_err();
        assert!(err.contains("cell_count"), "{err}");
    }
}
