//! The parallel sweep executor.
//!
//! Cells are pulled off a shared atomic work queue by a scoped thread pool,
//! so long cells never stall the sweep behind them and all cores stay busy.
//! Three properties make the parallel path bit-reproducible against the
//! sequential one:
//!
//! 1. **Index-derived seeds** — each cell's seed is a SplitMix64 mix of the
//!    master seed and the cell *index*, never of the worker that happens to
//!    run it.
//! 2. **Slot writes** — results are written into a pre-sized slot per cell,
//!    so report order is planning order regardless of completion order.
//! 3. **Panic isolation** — a panicking cell is caught with
//!    [`std::panic::catch_unwind`] and recorded as an error outcome; the
//!    queue keeps draining.
//!
//! Worker count is additionally clamped to the machine's available
//! parallelism: requesting more workers than hardware threads cannot make a
//! CPU-bound sweep faster, it only adds spawn cost, context switching and
//! lock pressure on the shared view caches (the effect that made 2–4-thread
//! sweeps *slower* than sequential ones on small machines).  When the clamp
//! leaves a single worker the sequential path runs directly — results are
//! identical either way, so `--threads N` output never depends on the
//! machine.

use crate::cell::CellResult;
use crate::report::RunReport;
use crate::scenario::{Plan, PlannedCell, Scenario, SweepConfig};
use interleave::{AtomicUsizeApi, MutexApi, StdSync, SyncFacade};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
// ld-analyze: allow(D002, reason = "wall-clock timings are reporting-only; no control flow depends on them")
use std::time::Instant;

/// Derives the seed of cell `index` from the master seed: SplitMix64 over
/// the pair, so neighbouring indices get statistically independent streams
/// and the mapping is stable across thread counts, platforms and runs.
pub fn cell_seed(master: u64, index: usize) -> u64 {
    let mut z = master ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Plans `scenario` under `config` and executes every cell, on
/// `config.threads` workers.
///
/// # Errors
///
/// Propagates configuration errors ([`SweepConfig::validate`]) and planning
/// failures; execution itself cannot fail (cell panics are captured into
/// the report).
pub fn execute(scenario: &dyn Scenario, config: &SweepConfig) -> Result<RunReport, String> {
    config.validate().map_err(|e| e.to_string())?;
    let plan = scenario.plan(config)?;
    Ok(execute_plan(scenario.name(), plan, config))
}

/// Executes an already expanded plan.  Exposed for benches and tests that
/// want to reuse a plan's caches across runs.
pub fn execute_plan(scenario_name: &str, plan: Plan, config: &SweepConfig) -> RunReport {
    let stats_before = plan.cache_stats();
    let started = Instant::now();
    let results = if config.threads <= 1 {
        run_sequential(&plan.cells, config)
    } else {
        run_parallel(&plan.cells, config)
    };
    let total_wall = started.elapsed();
    let cache = plan.cache_stats().since(&stats_before);
    RunReport::new(scenario_name, config.clone(), results, total_wall, cache)
}

/// Runs one cell: derives its seed from the *global* cell index, catches
/// panics, records wall time.  Shared with the streaming sharded executor
/// ([`crate::stream`]), which is what makes a resumed sweep's cells
/// byte-identical to an uninterrupted one's.
pub(crate) fn run_cell(cell: &PlannedCell, index: usize, config: &SweepConfig) -> CellResult {
    let seed = cell_seed(config.seed, index);
    let started = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| (cell.run)(seed)))
        .map_err(|payload| panic_message(payload.as_ref()));
    CellResult {
        spec: cell.spec.clone(),
        seed,
        outcome,
        wall: started.elapsed(),
    }
}

fn run_sequential(cells: &[PlannedCell], config: &SweepConfig) -> Vec<CellResult> {
    cells
        .iter()
        .enumerate()
        .map(|(index, cell)| run_cell(cell, index, config))
        .collect()
}

/// Worker threads actually worth spawning for `requested` threads over
/// `cells` cells: bounded by the cell count and by hardware parallelism.
/// The hardware probe is cached — `available_parallelism` re-reads cgroup
/// state on every call, which is measurable at per-sweep granularity.
pub(crate) fn effective_workers(requested: usize, cells: usize) -> usize {
    static HARDWARE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let hardware = *HARDWARE
        .get_or_init(|| std::thread::available_parallelism().map_or(usize::MAX, usize::from));
    requested.min(cells).min(hardware).max(1)
}

fn run_parallel(cells: &[PlannedCell], config: &SweepConfig) -> Vec<CellResult> {
    let workers = effective_workers(config.threads, cells.len());
    if workers <= 1 {
        // Oversubscribed down to one worker: skip the queue entirely.  The
        // sequential path produces the identical report.
        return run_sequential(cells, config);
    }
    run_parallel_sync::<StdSync>(cells, config, workers)
}

/// The parallel work-queue core, generic over the sync facade: claims come
/// off one shared atomic counter, results land in pre-sized per-cell slots.
/// Production monomorphises to plain `std::sync` via [`StdSync`]; the model
/// suite instantiates [`interleave::ModelSync`] to explore every schedule.
fn run_parallel_sync<S: SyncFacade>(
    cells: &[PlannedCell],
    config: &SweepConfig,
    workers: usize,
) -> Vec<CellResult> {
    let next = S::AtomicUsize::new(0);
    let slots: Vec<S::Mutex<Option<CellResult>>> =
        cells.iter().map(|_| S::Mutex::new(None)).collect();
    let worker_fns: Vec<_> = (0..workers)
        .map(|_| {
            let next = &next;
            let slots = &slots;
            move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(index) else { break };
                let result = run_cell(cell, index, config);
                *slots[index].lock() = Some(result);
            }
        })
        .collect();
    S::scope_workers(worker_fns, || ());
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            // Every index below the final counter value was claimed by
            // exactly one worker, so the slot is always filled; recover
            // defensively (as an error outcome) instead of unwrapping.
            slot.into_inner().unwrap_or_else(|| CellResult {
                spec: cells[index].spec.clone(),
                seed: cell_seed(config.seed, index),
                outcome: Err("internal error: result slot never filled".to_string()),
                wall: std::time::Duration::ZERO,
            })
        })
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellOutcome, CellSpec};

    struct CountingScenario;

    impl Scenario for CountingScenario {
        fn name(&self) -> &str {
            "counting"
        }
        fn description(&self) -> &str {
            "test scenario: cells echo their seed"
        }
        fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
            let mut plan = Plan::new();
            for i in 0..config.max_n {
                let spec = CellSpec::new(format!("cell/{i}"), [("i", i.to_string())]);
                plan.push(spec, move |seed| {
                    if i == 13 {
                        panic!("unlucky cell {i}");
                    }
                    CellOutcome::new("ok", true).with_metric("seed_low", (seed % 1024) as f64)
                });
            }
            Ok(plan)
        }
    }

    fn config(threads: usize) -> SweepConfig {
        SweepConfig {
            max_n: 40,
            threads,
            seed: 99,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn seeds_are_stable_and_spread() {
        let a = cell_seed(1, 0);
        let b = cell_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(cell_seed(1, 7), cell_seed(1, 7));
        assert_ne!(cell_seed(1, 7), cell_seed(2, 7));
    }

    #[test]
    fn parallel_results_match_sequential_in_order_and_content() {
        let sequential = execute(&CountingScenario, &config(1)).unwrap();
        for threads in [2, 4, 16] {
            let parallel = execute(&CountingScenario, &config(threads)).unwrap();
            assert_eq!(sequential.cells.len(), parallel.cells.len());
            for (s, p) in sequential.cells.iter().zip(&parallel.cells) {
                assert_eq!(s.spec, p.spec);
                assert_eq!(s.seed, p.seed);
                assert_eq!(s.outcome, p.outcome);
            }
            assert_eq!(
                sequential.deterministic_json(),
                parallel.deterministic_json()
            );
        }
    }

    #[test]
    fn panics_are_isolated_and_recorded() {
        let report = execute(&CountingScenario, &config(4)).unwrap();
        assert_eq!(report.panicked(), 1);
        assert_eq!(report.passed(), 39);
        let failed = &report.cells[13];
        assert_eq!(failed.outcome.as_ref().unwrap_err(), "unlucky cell 13");
    }

    #[test]
    fn effective_workers_is_clamped_by_cells_and_hardware() {
        // Zero requested still yields one worker.
        assert_eq!(effective_workers(0, 10), 1);
        // The cell count caps the workers whatever was requested.
        assert!(effective_workers(64, 2) <= 2);
        assert_eq!(effective_workers(64, 0), 1);
        // Hardware caps an oversubscribed request; requesting fewer than the
        // hardware offers is honoured exactly.
        let hardware = std::thread::available_parallelism().map_or(usize::MAX, usize::from);
        assert!(effective_workers(1024, 1024) <= hardware);
        assert_eq!(effective_workers(1, 1024), 1);
        if hardware >= 2 {
            assert_eq!(effective_workers(2, 1024), 2);
        }
    }

    /// Model suite: [`run_parallel_sync`] under every schedule the explorer
    /// reaches within its cap — the work queue must fill every slot with
    /// the planning-order result no matter how worker claims interleave.
    #[test]
    fn model_parallel_slots_filled_in_order_under_all_schedules() {
        use interleave::ModelSync;

        let report = interleave::model_with(interleave::Config::with_max_schedules(2000), || {
            let cells: Vec<PlannedCell> = (0..4)
                .map(|i| {
                    PlannedCell::new(
                        CellSpec::new(format!("model/{i}"), [("i", i.to_string())]),
                        move |seed| {
                            CellOutcome::new("ok", true).with_metric("seed_low", (seed % 8) as f64)
                        },
                    )
                })
                .collect();
            let config = SweepConfig {
                max_n: 4,
                threads: 2,
                seed: 0xfeed,
                ..SweepConfig::default()
            };
            let results = run_parallel_sync::<ModelSync>(&cells, &config, 2);
            assert_eq!(results.len(), cells.len());
            for (index, result) in results.iter().enumerate() {
                assert_eq!(result.spec, cells[index].spec, "slot {index} out of order");
                assert_eq!(result.seed, cell_seed(config.seed, index));
                assert!(result.outcome.is_ok(), "slot {index} never filled");
            }
        });
        assert!(
            report.schedules >= 1000,
            "expected >=1000 distinct schedules, explored {}",
            report.schedules
        );
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let report = execute(
            &CountingScenario,
            &SweepConfig {
                max_n: 3,
                threads: 64,
                seed: 5,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.cells.len(), 3);
    }
}
