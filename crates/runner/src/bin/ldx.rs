//! `ldx` — list and run experiment sweeps by name.
//!
//! ```text
//! ldx list
//! ldx run <scenario> [--max-n N] [--threads T] [--seed S] [--radius R]
//!                    [--node-budget N] [--view-budget N]
//!                    [--out FILE.json] [--csv FILE.csv] [--no-bench-json]
//!                    [--deterministic]
//! ```
//!
//! `run` executes the named scenario, prints a summary, and writes the full
//! JSON report (default `ldx-<scenario>.json` in the working directory), an
//! optional CSV, and a perf snapshot to `BENCH_runner.json` at the repo
//! root.  With `--deterministic` the report omits every timing- and
//! parallelism-dependent field, so two runs differing only in `--threads`
//! must produce byte-identical files — CI diffs exactly that.  `--radius`
//! overrides the scenario's natural view radius; `--node-budget` /
//! `--view-budget` cap each cell's enumeration work, with exhaustion
//! reported as an explicit outcome (schema `ld-runner/report/v2`), not a
//! failure.  The process exits nonzero when any cell fails or panics.

use ld_runner::{executor, scenarios, RunReport, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    let mut out = String::from(
        "usage:\n  ldx list\n  ldx run <scenario> [--max-n N] [--threads T] [--seed S] [--radius R]\n                     [--node-budget N] [--view-budget N]\n                     [--out FILE.json] [--csv FILE.csv] [--no-bench-json]\n                     [--deterministic]\n\nscenarios:\n",
    );
    for scenario in scenarios::all() {
        out.push_str(&format!(
            "  {:<20} {}\n",
            scenario.name(),
            scenario.description()
        ));
    }
    out
}

struct RunArgs {
    scenario: String,
    config: SweepConfig,
    out: Option<PathBuf>,
    csv: Option<PathBuf>,
    bench_json: bool,
    deterministic: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut iter = args.iter();
    let scenario = iter
        .next()
        .ok_or_else(|| "run: missing scenario name".to_string())?
        .clone();
    let mut run = RunArgs {
        scenario,
        config: SweepConfig::default(),
        out: None,
        csv: None,
        bench_json: true,
        deterministic: false,
    };
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} expects a value"))
                .map(str::to_string)
        };
        match flag.as_str() {
            "--max-n" => {
                run.config.max_n = value("--max-n")?
                    .parse()
                    .map_err(|e| format!("--max-n: {e}"))?;
            }
            "--threads" => {
                run.config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if run.config.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--seed" => {
                run.config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--radius" => {
                run.config.radius = Some(
                    value("--radius")?
                        .parse()
                        .map_err(|e| format!("--radius: {e}"))?,
                );
            }
            "--node-budget" => {
                run.config.node_budget = Some(
                    value("--node-budget")?
                        .parse()
                        .map_err(|e| format!("--node-budget: {e}"))?,
                );
            }
            "--view-budget" => {
                run.config.view_budget = Some(
                    value("--view-budget")?
                        .parse()
                        .map_err(|e| format!("--view-budget: {e}"))?,
                );
            }
            "--out" => run.out = Some(PathBuf::from(value("--out")?)),
            "--csv" => run.csv = Some(PathBuf::from(value("--csv")?)),
            "--no-bench-json" => run.bench_json = false,
            "--deterministic" => run.deterministic = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(run)
}

/// The workspace root this binary was built from; `BENCH_runner.json` lands
/// there so the perf trajectory lives next to the sources.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn print_summary(report: &RunReport) {
    println!(
        "{}: {} cells on {} thread(s) in {:.2?}",
        report.scenario,
        report.cells.len(),
        report.config.threads,
        report.total_wall
    );
    println!(
        "  passed {}  failed {}  panicked {}  budget-exhausted {}",
        report.passed(),
        report.failed(),
        report.panicked(),
        report.exhausted()
    );
    println!(
        "  canonical-view cache: {} hits, {} misses, hit rate {:.1}%",
        report.cache.hits,
        report.cache.misses,
        100.0 * report.cache_hit_rate()
    );
    for cell in report.cells.iter().filter(|c| !c.passed()) {
        match &cell.outcome {
            Ok(outcome) => println!("  FAIL {} -> {}", cell.spec.id, outcome.verdict),
            Err(message) => println!("  PANIC {} -> {}", cell.spec.id, message),
        }
    }
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let run = parse_run_args(args)?;
    let scenario = scenarios::find(&run.scenario)
        .ok_or_else(|| format!("unknown scenario '{}'\n\n{}", run.scenario, usage()))?;
    let report = executor::execute(scenario.as_ref(), &run.config)?;
    print_summary(&report);

    let out = run
        .out
        .unwrap_or_else(|| PathBuf::from(format!("ldx-{}.json", report.scenario)));
    let rendered = if run.deterministic {
        report.deterministic_json()
    } else {
        report.to_json()
    };
    RunReport::write(&out, &rendered).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("  report: {}", out.display());

    if let Some(csv) = run.csv {
        let rendered = if run.deterministic {
            report.deterministic_csv()
        } else {
            report.to_csv()
        };
        RunReport::write(&csv, &rendered).map_err(|e| format!("writing {}: {e}", csv.display()))?;
        println!("  csv: {}", csv.display());
    }

    if run.bench_json {
        // The snapshot is best-effort: the repo root is baked in at compile
        // time, so a relocated binary must not fail an otherwise green run.
        let bench = repo_root().join("BENCH_runner.json");
        match RunReport::write(&bench, &report.bench_snapshot_json()) {
            Ok(()) => println!("  perf snapshot: {}", bench.display()),
            Err(e) => eprintln!("ldx: skipping perf snapshot {}: {e}", bench.display()),
        }
    }

    Ok(report.failed() == 0 && report.panicked() == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some("run") => match cmd_run(&args[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("ldx: {message}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
