//! `ldx` — list, run, resume and diff experiment sweeps.
//!
//! ```text
//! ldx list
//! ldx run <scenario> [--max-n N] [--threads T] [--seed S] [--radius R]
//!                    [--node-budget N] [--view-budget N] [--shard-size N]
//!                    [--out FILE.json] [--csv FILE.csv] [--no-bench-json]
//!                    [--deterministic] [--max-shards N]
//! ldx resume <report.json> [--threads T] [--no-bench-json] [--max-shards N]
//! ldx diff <a.json> <b.json>
//! ldx analyze [--deny-all] [--json] [--root DIR]
//! ```
//!
//! `run` executes the named scenario through the **streaming sharded
//! pipeline**: cells are executed shard by shard and appended to the JSON
//! report (schema `ld-runner/report/v3`) as they complete, so peak memory
//! is bounded by the shard window, not the sweep — and a checkpoint
//! sidecar (`<report>.ckpt`) records every flushed shard.  A killed run
//! therefore loses at most one shard of work: `resume` verifies the
//! report prefix against the checkpoint digest and continues, producing a
//! file byte-identical to an uninterrupted run.  With `--deterministic`
//! the report omits every timing- and parallelism-dependent field, so runs
//! differing only in `--threads` (or in where they were killed) must
//! produce byte-identical files — CI diffs exactly that.  `diff` compares
//! any two persisted reports (any schema version: v1, v2 or v3) cell by
//! cell.  The process exits nonzero when any cell fails or panics, and
//! after an incomplete (`--max-shards`-limited) run.

use ld_runner::stream::{self, StreamOptions, StreamSummary};
use ld_runner::{scenarios, ReportSummary, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    let mut out = String::from(
        "usage:\n  ldx list\n  ldx run <scenario> [--max-n N] [--threads T] [--seed S] [--radius R]\n                     [--node-budget N] [--view-budget N] [--shard-size N]\n                     [--out FILE.json] [--csv FILE.csv] [--no-bench-json]\n                     [--deterministic] [--max-shards N]\n  ldx resume <report.json> [--threads T] [--no-bench-json] [--max-shards N]\n  ldx diff <a.json> <b.json>\n  ldx analyze [--deny-all] [--json] [--root DIR]\n\nscenarios:\n",
    );
    for scenario in scenarios::all() {
        out.push_str(&format!(
            "  {:<20} {}\n",
            scenario.name(),
            scenario.description()
        ));
    }
    out
}

struct RunArgs {
    scenario: String,
    config: SweepConfig,
    out: Option<PathBuf>,
    csv: Option<PathBuf>,
    bench_json: bool,
    deterministic: bool,
    max_shards: Option<usize>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut iter = args.iter();
    let scenario = iter
        .next()
        .ok_or_else(|| "run: missing scenario name".to_string())?
        .clone();
    let mut run = RunArgs {
        scenario,
        config: SweepConfig::default(),
        out: None,
        csv: None,
        bench_json: true,
        deterministic: false,
        max_shards: None,
    };
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} expects a value"))
                .map(str::to_string)
        };
        match flag.as_str() {
            "--max-n" => {
                run.config.max_n = value("--max-n")?
                    .parse()
                    .map_err(|e| format!("--max-n: {e}"))?;
            }
            "--threads" => {
                run.config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if run.config.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--seed" => {
                run.config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--radius" => {
                run.config.radius = Some(
                    value("--radius")?
                        .parse()
                        .map_err(|e| format!("--radius: {e}"))?,
                );
            }
            "--node-budget" => {
                run.config.node_budget = Some(
                    value("--node-budget")?
                        .parse()
                        .map_err(|e| format!("--node-budget: {e}"))?,
                );
            }
            "--view-budget" => {
                run.config.view_budget = Some(
                    value("--view-budget")?
                        .parse()
                        .map_err(|e| format!("--view-budget: {e}"))?,
                );
            }
            "--shard-size" => {
                run.config.shard_size = value("--shard-size")?
                    .parse()
                    .map_err(|e| format!("--shard-size: {e}"))?;
            }
            "--max-shards" => {
                run.max_shards = Some(
                    value("--max-shards")?
                        .parse()
                        .map_err(|e| format!("--max-shards: {e}"))?,
                );
            }
            "--out" => run.out = Some(PathBuf::from(value("--out")?)),
            "--csv" => run.csv = Some(PathBuf::from(value("--csv")?)),
            "--no-bench-json" => run.bench_json = false,
            "--deterministic" => run.deterministic = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    run.config.validate().map_err(|e| e.to_string())?;
    Ok(run)
}

/// The workspace root this binary was built from; `BENCH_runner.json` lands
/// there so the perf trajectory lives next to the sources.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn print_summary(summary: &StreamSummary) {
    println!(
        "{}: {} cells in {} shard(s) on {} thread(s) in {:.2?}{}",
        summary.scenario,
        summary.cell_count,
        summary.shard_count,
        summary.config.threads,
        summary.total_wall,
        if summary.cells_run < summary.cell_count && summary.completed {
            format!(
                " ({} restored from checkpoint)",
                summary.cell_count - summary.cells_run
            )
        } else {
            String::new()
        }
    );
    println!(
        "  passed {}  failed {}  panicked {}  budget-exhausted {}",
        summary.passed, summary.failed, summary.panicked, summary.exhausted
    );
    println!(
        "  canonical-view cache: {} hits, {} misses, hit rate {:.1}%",
        summary.cache.hits,
        summary.cache.misses,
        100.0 * summary.cache.hit_rate()
    );
    for (id, what) in &summary.failures {
        println!("  FAIL {id} -> {what}");
    }
    if !summary.completed {
        println!(
            "  INTERRUPTED after {}/{} shards — continue with `ldx resume`",
            summary.shards_written, summary.shard_count
        );
    }
}

fn write_bench_snapshot(summary: &StreamSummary) {
    // The snapshot is best-effort: the repo root is baked in at compile
    // time, so a relocated binary must not fail an otherwise green run.
    let bench = repo_root().join("BENCH_runner.json");
    match std::fs::write(&bench, summary.bench_snapshot_json()) {
        Ok(()) => println!("  perf snapshot: {}", bench.display()),
        Err(e) => eprintln!("ldx: skipping perf snapshot {}: {e}", bench.display()),
    }
}

fn finish(summary: &StreamSummary, bench_json: bool) -> bool {
    if bench_json && summary.completed {
        write_bench_snapshot(summary);
    }
    summary.completed && summary.failed == 0 && summary.panicked == 0
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let run = parse_run_args(args)?;
    let scenario = scenarios::find(&run.scenario)
        .ok_or_else(|| format!("unknown scenario '{}'\n\n{}", run.scenario, usage()))?;
    let out = run
        .out
        .unwrap_or_else(|| PathBuf::from(format!("ldx-{}.json", scenario.name())));
    let opts = StreamOptions {
        deterministic: run.deterministic,
        max_shards: run.max_shards,
        csv: run.csv.clone(),
    };
    let summary = stream::run(scenario.as_ref(), &run.config, &out, &opts)?;
    print_summary(&summary);
    println!("  report: {}", out.display());
    if let Some(csv) = &run.csv {
        println!("  csv: {}", csv.display());
    }
    Ok(finish(&summary, run.bench_json))
}

fn cmd_resume(args: &[String]) -> Result<bool, String> {
    let mut iter = args.iter();
    let report = PathBuf::from(
        iter.next()
            .ok_or_else(|| "resume: missing report path".to_string())?,
    );
    let mut threads = None;
    let mut bench_json = true;
    let mut max_shards = None;
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} expects a value"))
                .map(str::to_string)
        };
        match flag.as_str() {
            "--threads" => {
                let t: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(t);
            }
            "--max-shards" => {
                max_shards = Some(
                    value("--max-shards")?
                        .parse()
                        .map_err(|e| format!("--max-shards: {e}"))?,
                );
            }
            "--no-bench-json" => bench_json = false,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let summary = stream::resume(&report, threads, max_shards)?;
    print_summary(&summary);
    println!("  report: {}", report.display());
    Ok(finish(&summary, bench_json))
}

/// Compares two persisted reports (any schema version) and prints what
/// differs.  Returns `true` when they are equivalent.
fn cmd_diff(args: &[String]) -> Result<bool, String> {
    let [a_path, b_path] = args else {
        return Err("diff: expected exactly two report paths".to_string());
    };
    let read = |path: &String| -> Result<ReportSummary, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        ReportSummary::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let a = read(a_path)?;
    let b = read(b_path)?;
    let mut differences: Vec<String> = Vec::new();
    let mut field = |name: &str, left: String, right: String| {
        if left != right {
            differences.push(format!("{name}: {left} != {right}"));
        }
    };
    field("scenario", a.scenario.clone(), b.scenario.clone());
    field("max_n", a.max_n.to_string(), b.max_n.to_string());
    field("seed", a.seed.to_string(), b.seed.to_string());
    field(
        "radius",
        format!("{:?}", a.radius),
        format!("{:?}", b.radius),
    );
    field(
        "node_budget",
        format!("{:?}", a.node_budget),
        format!("{:?}", b.node_budget),
    );
    field(
        "view_budget",
        format!("{:?}", a.view_budget),
        format!("{:?}", b.view_budget),
    );
    field(
        "cell_count",
        a.cell_count.to_string(),
        b.cell_count.to_string(),
    );
    field("passed", a.passed.to_string(), b.passed.to_string());
    field("failed", a.failed.to_string(), b.failed.to_string());
    field("panicked", a.panicked.to_string(), b.panicked.to_string());
    field(
        "exhausted",
        a.exhausted.to_string(),
        b.exhausted.to_string(),
    );
    if a.cells.len() != b.cells.len() {
        differences.push(format!(
            "cells array length: {} != {}",
            a.cells.len(),
            b.cells.len()
        ));
    }
    const SHOWN: usize = 10;
    let mut cell_differences = 0usize;
    for (i, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
        if ca != cb {
            cell_differences += 1;
            if cell_differences <= SHOWN {
                let what = if ca.id != cb.id {
                    format!("'{}' != '{}'", ca.id, cb.id)
                } else {
                    format!(
                        "'{}': verdict {:?}/{:?}, pass {}/{}, seed {}/{}",
                        ca.id, ca.verdict, cb.verdict, ca.pass, cb.pass, ca.seed, cb.seed
                    )
                };
                differences.push(format!("cell {i}: {what}"));
            }
        }
    }
    if cell_differences > SHOWN {
        differences.push(format!(
            "... and {} more differing cells",
            cell_differences - SHOWN
        ));
    }
    if a.schema != b.schema {
        println!(
            "note: comparing across schemas ({} vs {})",
            a.schema, b.schema
        );
    }
    if differences.is_empty() {
        println!(
            "reports are equivalent: {} cells, {} passed, {} failed, {} panicked",
            a.cell_count, a.passed, a.failed, a.panicked
        );
        Ok(true)
    } else {
        for difference in &differences {
            println!("DIFF {difference}");
        }
        Ok(false)
    }
}

/// `ldx analyze [--deny-all] [--json] [--root DIR]` — the repo-invariant
/// lint pass (rules D001–D005, see `docs/ANALYZE_RULES.md`).  Prints
/// findings and suppressions; with `--deny-all` any unsuppressed finding
/// fails the process, which is what CI gates on.
fn cmd_analyze(args: &[String]) -> Result<bool, String> {
    let mut deny_all = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--root" => {
                root = Some(PathBuf::from(iter.next().ok_or("--root expects a value")?));
            }
            other => return Err(format!("analyze: unknown flag {other}")),
        }
    }
    let root = match root {
        Some(root) => root,
        None => workspace_root()?,
    };
    let analysis = ld_analyze::analyze_root(&root)?;
    if json {
        print!("{}", analysis.to_json());
    } else {
        for finding in &analysis.findings {
            println!(
                "{}:{}: {} {}",
                finding.file,
                finding.line,
                finding.rule.id(),
                finding.message
            );
        }
        for sup in &analysis.suppressed {
            println!(
                "{}:{}: {} suppressed: {}",
                sup.file,
                sup.line,
                sup.rule.id(),
                sup.reason
            );
        }
        println!(
            "ldx analyze: {} finding(s), {} suppressed, {} files scanned",
            analysis.findings.len(),
            analysis.suppressed.len(),
            analysis.files_scanned
        );
    }
    Ok(analysis.is_clean() || !deny_all)
}

/// Ascends from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]` — the root `ldx analyze` scans by default.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace Cargo.toml above the current directory; pass --root".to_string(),
            );
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("list") => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        _ => {
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("ldx: {message}");
            ExitCode::FAILURE
        }
    }
}
