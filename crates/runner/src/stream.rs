//! Streaming sharded sweep execution: O(shard) memory, checkpoint/resume.
//!
//! The classic executor ([`crate::executor`]) materialises every
//! [`CellResult`] in memory and serialises one monolithic report at the end —
//! fine for hundreds of cells, a hard ceiling for thousands.  This module
//! rebuilds execution as a pipeline:
//!
//! 1. **Deterministic shards.**  The plan's cells are partitioned by index
//!    into fixed-size shards ([`ShardLayout`], `SweepConfig::shard_size`
//!    cells each).  Shard boundaries are a pure function of the plan and
//!    the config — never of thread count or timing.
//! 2. **A bounded pipeline.**  Workers claim shards off an atomic counter
//!    and send completed shards through a *bounded* channel to the single
//!    writer (the calling thread).  A claim gate additionally stops any
//!    worker from running more than a fixed window ahead of the writer, so
//!    the number of shards in flight — executing, channel-queued or
//!    buffered for reordering — is bounded whatever the stragglers do.
//!    Peak memory is O(window × shard), not O(plan).
//! 3. **An append-only report.**  [`ReportStream`] emits schema
//!    `ld-runner/report/v3` incrementally: header, the `cells` array in
//!    cell-index order, then the trailing `summary` (and `perf`) objects.
//!    It composes the exact fragments [`crate::report`] renders, so the
//!    streamed file is byte-identical to [`RunReport::deterministic_json`](crate::report::RunReport::deterministic_json)
//!    for the same sweep — and therefore byte-identical across thread
//!    counts.
//! 4. **Checkpoints.**  After each shard is written and flushed, a sidecar
//!    `<report>.ckpt` line records the shard's counters, the report's byte
//!    offset and a running FNV-1a digest of everything written so far.  A
//!    killed sweep leaves a valid report prefix plus the sidecar;
//!    [`resume`] verifies the digest, truncates any half-written tail, and
//!    continues from the first unfinished shard — producing a final report
//!    byte-identical to an uninterrupted run (per-cell seeds derive from
//!    the *global* cell index, so resumed cells replay exactly).
//!
//! `ldx run` drives [`run`]; `ldx resume` drives [`resume`]; `ldx diff`
//! compares any two persisted reports via [`crate::summary`].

use crate::cell::CellResult;
use crate::executor::{effective_workers, run_cell};
use crate::json::Json;
use crate::report::{cell_json, config_json, csv_header, csv_row, perf_json, summary_json, SCHEMA};
use crate::scenario::{Plan, PlannedCell, Scenario, SweepConfig};
use crate::spool_io::{RealIo, SpoolFile, SpoolIo};
use interleave::{
    AtomicBoolApi, AtomicUsizeApi, CondvarApi, MutexApi, ReceiverApi, SenderApi, StdSync,
    SyncFacade,
};
use ld_local::cache::CacheStats;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
// ld-analyze: allow(D002, reason = "wall-clock timings are reporting-only; no control flow depends on them")
use std::time::{Duration, Instant};

/// The schema identifier of checkpoint sidecar files.
pub const CKPT_SCHEMA: &str = "ld-runner/ckpt/v1";

/// FNV-1a 64 over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`]).  The checkpoint digest: cheap, streaming, and entirely
/// deterministic — it guards against resuming onto a report that was
/// edited, torn, or produced by a different run, not against adversaries.
/// Public because the dispatch coordinator cross-checks worker-reported
/// shard digests with the same function.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(state, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// The FNV-1a 64 offset basis (the digest of zero bytes).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The deterministic partition of a plan's cells into fixed-size shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    /// Cells per shard (the final shard may be smaller).
    pub shard_size: usize,
    /// Total cells in the plan.
    pub cell_count: usize,
}

impl ShardLayout {
    /// The layout for `cell_count` cells in shards of `shard_size`.
    pub fn new(cell_count: usize, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard_size validated nonzero upstream");
        ShardLayout {
            shard_size,
            cell_count,
        }
    }

    /// Number of shards (zero cells plan to zero shards).
    pub fn shard_count(&self) -> usize {
        self.cell_count.div_ceil(self.shard_size)
    }

    /// The global cell-index range of shard `shard`.
    pub fn shard_range(&self, shard: usize) -> std::ops::Range<usize> {
        let start = shard * self.shard_size;
        let end = ((shard + 1) * self.shard_size).min(self.cell_count);
        start..end
    }
}

/// An incremental writer of one `ld-runner/report/v3` document.
///
/// Composes the same JSON fragments [`crate::report`] renders, in the same
/// order and at the same nesting depths, so the streamed bytes are
/// identical to rendering the complete document at once — the differential
/// conformance tests assert this byte for byte.
pub struct ReportStream<W: Write> {
    sink: W,
    offset: u64,
    digest: u64,
    cells_written: usize,
}

impl<W: Write> ReportStream<W> {
    /// Writes the document header (schema, scenario, config, the opening of
    /// the `cells` array) to `sink`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn begin(sink: W, scenario: &str, config: &SweepConfig) -> std::io::Result<Self> {
        let mut stream = ReportStream {
            sink,
            offset: 0,
            digest: FNV_OFFSET,
            cells_written: 0,
        };
        let head = Json::object()
            .set("schema", SCHEMA)
            .set("scenario", scenario)
            .set("config", config_json(config));
        let mut text = head.render();
        // The rendered header ends with `\n}\n`; the document continues
        // instead with the cells array.
        text.truncate(text.len() - 3);
        text.push_str(",\n  \"cells\": [");
        stream.emit(&text)?;
        Ok(stream)
    }

    /// Reconstructs a writer mid-document (resume): `sink` must already be
    /// positioned at `offset`, with `digest` the FNV-1a of the preceding
    /// bytes and `cells_written` the number of cells they contain.
    pub fn resume_at(sink: W, offset: u64, digest: u64, cells_written: usize) -> Self {
        ReportStream {
            sink,
            offset,
            digest,
            cells_written,
        }
    }

    /// Appends one shard's cells to the `cells` array and flushes, so a
    /// kill after this call tears nothing the checkpoint will point into.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_cells(&mut self, cells: &[CellResult]) -> std::io::Result<()> {
        let fragments: Vec<String> = cells.iter().map(render_cell_fragment).collect();
        self.write_rendered_cells(&fragments)
    }

    /// Appends already-rendered cell fragments (depth-2, as produced by
    /// [`execute_shard`]) with exactly the separators [`ReportStream::write_cells`]
    /// would emit — the merge entry point of the dispatch coordinator,
    /// byte-identical to rendering the cells locally.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_rendered_cells<S: AsRef<str>>(&mut self, fragments: &[S]) -> std::io::Result<()> {
        let mut text = String::new();
        for fragment in fragments {
            text.push_str(if self.cells_written == 0 {
                "\n    "
            } else {
                ",\n    "
            });
            text.push_str(fragment.as_ref());
            self.cells_written += 1;
        }
        self.emit(&text)?;
        self.sink.flush()
    }

    /// Closes the `cells` array and writes the trailing `summary` (and,
    /// when given, `perf`) objects plus the document close.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self, summary: Json, perf: Option<Json>) -> std::io::Result<W> {
        let mut text = String::new();
        // An empty cells array must render exactly as `[]` does inline.
        text.push_str(if self.cells_written == 0 {
            "]"
        } else {
            "\n  ]"
        });
        text.push_str(",\n  \"summary\": ");
        summary.write_fragment(&mut text, 1);
        if let Some(perf) = perf {
            text.push_str(",\n  \"perf\": ");
            perf.write_fragment(&mut text, 1);
        }
        text.push_str("\n}\n");
        self.emit(&text)?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Bytes written so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// FNV-1a digest of the bytes written so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Cells appended so far.
    pub fn cells_written(&self) -> usize {
        self.cells_written
    }

    fn emit(&mut self, text: &str) -> std::io::Result<()> {
        self.sink.write_all(text.as_bytes())?;
        self.digest = fnv1a(self.digest, text.as_bytes());
        self.offset += text.len() as u64;
        Ok(())
    }
}

/// Renders one cell as the depth-2 JSON fragment the `cells` array holds
/// (no separators).
fn render_cell_fragment(cell: &CellResult) -> String {
    let mut fragment = String::new();
    cell_json(cell).write_fragment(&mut fragment, 2);
    fragment
}

/// One shard executed for transport: the rendered report fragments plus
/// counters, the worker half of `ldx dispatch`.  The `digest` is FNV-1a
/// over the fragment bytes in cell order (no separators) seeded with
/// [`FNV_OFFSET`]; the coordinator recomputes it over the fragments it
/// received, so a truncated or corrupted transfer is rejected before any
/// byte reaches the merged report.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCells {
    /// Shard index in the layout.
    pub shard: usize,
    /// Depth-2 cell fragments, in global cell-index order.
    pub fragments: Vec<String>,
    /// Passing cells.
    pub passed: usize,
    /// Failing (completed, wrong verdict) cells.
    pub failed: usize,
    /// Panicked cells.
    pub panicked: usize,
    /// Budget-exhausted cells.
    pub exhausted: usize,
    /// Per-cell wall times, micros (feeds the merged checkpoint only —
    /// never the deterministic report bytes).
    pub wall_micros: Vec<u64>,
    /// `(cell id, verdict-or-panic)` of every non-passing cell.
    pub failures: Vec<(String, String)>,
    /// FNV-1a over the fragment bytes, seeded with [`FNV_OFFSET`].
    pub digest: u64,
}

/// Executes one shard of `cells` and renders it for transport — the entry
/// point the `POST /shards` worker endpoint drives.  Cells run
/// sequentially in index order; per-cell seeds derive from the *global*
/// index, so the fragments are byte-identical to what a local
/// [`run`] would stream for the same shard.
pub fn execute_shard(
    cells: &[PlannedCell],
    config: &SweepConfig,
    layout: ShardLayout,
    shard: usize,
) -> ShardCells {
    let range = layout.shard_range(shard);
    let mut out = ShardCells {
        shard,
        fragments: Vec::with_capacity(range.len()),
        passed: 0,
        failed: 0,
        panicked: 0,
        exhausted: 0,
        wall_micros: Vec::with_capacity(range.len()),
        failures: Vec::new(),
        digest: FNV_OFFSET,
    };
    for index in range {
        let cell = run_cell(&cells[index], index, config);
        if cell.passed() {
            out.passed += 1;
        } else if cell.panicked() {
            out.panicked += 1;
        } else {
            out.failed += 1;
        }
        if cell.exhausted() {
            out.exhausted += 1;
        }
        if !cell.passed() {
            let what = match &cell.outcome {
                Ok(outcome) => outcome.verdict.clone(),
                Err(message) => format!("panic: {message}"),
            };
            out.failures.push((cell.spec.id.clone(), what));
        }
        out.wall_micros.push(cell.wall.as_micros() as u64);
        let fragment = render_cell_fragment(&cell);
        out.digest = fnv1a(out.digest, fragment.as_bytes());
        out.fragments.push(fragment);
    }
    out
}

/// One completed shard's checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Shard index.
    pub shard: usize,
    /// Cells the shard contained.
    pub cells: usize,
    /// Passing cells in the shard.
    pub passed: usize,
    /// Failing (completed, wrong verdict) cells in the shard.
    pub failed: usize,
    /// Panicked cells in the shard.
    pub panicked: usize,
    /// Budget-exhausted cells in the shard.
    pub exhausted: usize,
    /// Report byte offset after this shard was written.
    pub end_offset: u64,
    /// FNV-1a digest of the report's first `end_offset` bytes.
    pub digest: u64,
    /// Cumulative sweep wall time (across resumed runs) at this shard.
    pub elapsed_micros: u64,
    /// Cumulative cache counters at this shard.
    pub cache: CacheStats,
    /// Per-cell wall times in this shard, micros (what lets a resumed
    /// run's `perf` section still cover every cell).
    pub wall_micros: Vec<u64>,
}

/// The parsed checkpoint sidecar: everything needed to validate and
/// continue an interrupted streaming sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Scenario name (resolved back through the registry on resume).
    pub scenario: String,
    /// Whether the report is a deterministic document (no `perf` footer).
    pub deterministic: bool,
    /// The sweep configuration, including `threads` as originally run.
    pub config: SweepConfig,
    /// The planned cell count (resume re-plans and cross-checks it).
    pub cell_count: usize,
    /// Total shards in the plan.
    pub shard_count: usize,
    /// Report byte offset after the header.
    pub header_offset: u64,
    /// FNV-1a digest of the header bytes.
    pub header_digest: u64,
    /// Completed shards, in order.
    pub shards: Vec<ShardRecord>,
}

impl Checkpoint {
    /// The sidecar path for `report`: the report path with `.ckpt`
    /// appended (`sweep.json` → `sweep.json.ckpt`).
    pub fn path_for(report: &Path) -> PathBuf {
        let mut name = report.file_name().unwrap_or_default().to_os_string();
        name.push(".ckpt");
        report.with_file_name(name)
    }

    /// The header line (written once, before any shard completes).
    pub fn render_header(&self) -> String {
        let mut line = Json::object()
            .set("schema", CKPT_SCHEMA)
            .set("scenario", self.scenario.as_str())
            .set("deterministic", self.deterministic)
            .set("threads", self.config.threads)
            .set("cell_count", self.cell_count)
            .set("shard_count", self.shard_count)
            .set("header_offset", self.header_offset)
            .set("header_digest", self.header_digest)
            .set("config", config_json(&self.config))
            .render_compact();
        line.push('\n');
        line
    }

    /// One shard line (appended after the shard's report bytes are
    /// flushed).
    pub fn render_shard(record: &ShardRecord) -> String {
        let mut line = Json::object()
            .set("shard", record.shard)
            .set("cells", record.cells)
            .set("passed", record.passed)
            .set("failed", record.failed)
            .set("panicked", record.panicked)
            .set("exhausted", record.exhausted)
            .set("end_offset", record.end_offset)
            .set("digest", record.digest)
            .set("elapsed_micros", record.elapsed_micros)
            .set("cache_hits", record.cache.hits)
            .set("cache_misses", record.cache.misses)
            .set("cache_entries", record.cache.entries)
            .set(
                "wall_micros",
                Json::Arr(record.wall_micros.iter().map(|&w| Json::U64(w)).collect()),
            )
            .render_compact();
        line.push('\n');
        line
    }

    /// Parses a sidecar file.  A torn final line (the kill arrived mid-
    /// append) is ignored; the shard it described re-runs on resume.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed header, an unknown sidecar schema,
    /// or out-of-order shard records.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty checkpoint file")?;
        let header = Json::parse(header).map_err(|e| format!("checkpoint header: {e}"))?;
        let schema = header
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("checkpoint missing 'schema'")?;
        if schema != CKPT_SCHEMA {
            return Err(format!("unknown checkpoint schema '{schema}'"));
        }
        let need = |key: &str| {
            header
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint missing '{key}'"))
        };
        let config_doc = header.get("config").ok_or("checkpoint missing 'config'")?;
        let config_u64 = |key: &str| {
            config_doc
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint config missing '{key}'"))
        };
        let config = SweepConfig {
            max_n: config_u64("max_n")? as usize,
            threads: need("threads")? as usize,
            seed: config_u64("seed")?,
            radius: config_doc
                .get("radius")
                .and_then(Json::as_u64)
                .map(|r| r as usize),
            node_budget: config_doc.get("node_budget").and_then(Json::as_u64),
            view_budget: config_doc.get("view_budget").and_then(Json::as_u64),
            shard_size: config_u64("shard_size")? as usize,
        };
        let mut checkpoint = Checkpoint {
            scenario: header
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("checkpoint missing 'scenario'")?
                .to_string(),
            deterministic: header
                .get("deterministic")
                .and_then(Json::as_bool)
                .ok_or("checkpoint missing 'deterministic'")?,
            config,
            cell_count: need("cell_count")? as usize,
            shard_count: need("shard_count")? as usize,
            header_offset: need("header_offset")?,
            header_digest: need("header_digest")?,
            shards: Vec::new(),
        };
        let rest: Vec<&str> = lines.filter(|l| !l.trim().is_empty()).collect();
        for (i, line) in rest.iter().enumerate() {
            let doc = match Json::parse(line) {
                Ok(doc) => doc,
                // A torn trailing append is expected after a kill; anything
                // torn *before* the end means the file is corrupt.
                Err(_) if i + 1 == rest.len() => break,
                Err(e) => return Err(format!("checkpoint shard line {i}: {e}")),
            };
            let field = |key: &str| {
                doc.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("checkpoint shard line {i} missing '{key}'"))
            };
            let record = ShardRecord {
                shard: field("shard")? as usize,
                cells: field("cells")? as usize,
                passed: field("passed")? as usize,
                failed: field("failed")? as usize,
                panicked: field("panicked")? as usize,
                exhausted: field("exhausted")? as usize,
                end_offset: field("end_offset")?,
                digest: field("digest")?,
                elapsed_micros: field("elapsed_micros")?,
                cache: CacheStats {
                    hits: field("cache_hits")?,
                    misses: field("cache_misses")?,
                    entries: field("cache_entries")?,
                },
                wall_micros: doc
                    .get("wall_micros")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("checkpoint shard line {i} missing 'wall_micros'"))?
                    .iter()
                    .map(|w| w.as_u64().unwrap_or(0))
                    .collect(),
            };
            if record.shard != checkpoint.shards.len() {
                return Err(format!(
                    "checkpoint shard records out of order: expected {}, found {}",
                    checkpoint.shards.len(),
                    record.shard
                ));
            }
            checkpoint.shards.push(record);
        }
        Ok(checkpoint)
    }
}

/// Options for a streaming run beyond the [`SweepConfig`].
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Write the deterministic document (no `perf` footer) — the form CI
    /// byte-diffs across thread counts and kill/resume boundaries.
    pub deterministic: bool,
    /// Stop (without a footer, leaving the checkpoint behind) after this
    /// many shards have been written *by this process* — a deterministic
    /// stand-in for a mid-sweep kill, used by the resume tests.
    pub max_shards: Option<usize>,
    /// Stream a CSV rendering alongside the JSON report.  CSV output is
    /// not checkpointed: an interrupted run's partial CSV is simply
    /// overwritten by a fresh `run`, and `resume` does not extend it.
    pub csv: Option<PathBuf>,
}

/// What a streaming run (or resume) observed, cumulatively across the
/// original run and every resume.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Scenario name.
    pub scenario: String,
    /// The configuration (as run by *this* process: `threads` may differ
    /// from the interrupted run's).
    pub config: SweepConfig,
    /// Total planned cells.
    pub cell_count: usize,
    /// Cells executed by this process (the rest were checkpointed).
    pub cells_run: usize,
    /// Passing cells, cumulative.
    pub passed: usize,
    /// Failing cells, cumulative.
    pub failed: usize,
    /// Panicked cells, cumulative.
    pub panicked: usize,
    /// Budget-exhausted cells, cumulative.
    pub exhausted: usize,
    /// Shards written, cumulative.
    pub shards_written: usize,
    /// Total shards in the plan.
    pub shard_count: usize,
    /// `true` when the footer was written and the checkpoint removed;
    /// `false` when `max_shards` stopped the run early.
    pub completed: bool,
    /// Wall time of this process's portion of the sweep.
    pub total_wall: Duration,
    /// Wall time of the whole sweep, summed across the original run and
    /// every resume (equals [`StreamSummary::total_wall`] for a fresh run).
    pub cumulative_wall: Duration,
    /// Cache counters accumulated by this process.
    pub cache: CacheStats,
    /// Cache counters summed across every contributing process.
    pub cumulative_cache: CacheStats,
    /// `(cell id, verdict-or-panic)` of every non-passing cell this
    /// process ran, for console reporting.
    pub failures: Vec<(String, String)>,
}

impl StreamSummary {
    /// The flat perf snapshot (`BENCH_runner.json`), mirroring
    /// [`RunReport::bench_snapshot_json`].
    ///
    /// [`RunReport::bench_snapshot_json`]: crate::report::RunReport::bench_snapshot_json
    pub fn bench_snapshot_json(&self) -> String {
        Json::object()
            .set("bench", "ldx-sweep")
            .set("scenario", self.scenario.as_str())
            .set("cells", self.cell_count)
            .set("max_n", self.config.max_n)
            .set("threads", self.config.threads)
            .set("seed", self.config.seed)
            .set("passed", self.passed)
            .set("failed", self.failed)
            .set("panicked", self.panicked)
            .set("exhausted", self.exhausted)
            .set("total_wall_micros", self.cumulative_wall.as_micros() as u64)
            .set(
                "cells_per_second",
                if self.cumulative_wall.as_secs_f64() > 0.0 {
                    self.cell_count as f64 / self.cumulative_wall.as_secs_f64()
                } else {
                    0.0
                },
            )
            .set("cache_hits", self.cumulative_cache.hits)
            .set("cache_misses", self.cumulative_cache.misses)
            .set("cache_hit_rate", self.cumulative_cache.hit_rate())
            .render()
    }
}

/// Runs `scenario` as a streaming sharded sweep, writing the v3 report to
/// `path` (and the checkpoint sidecar next to it).
///
/// # Errors
///
/// Returns a message on configuration, planning or I/O failures.
pub fn run(
    scenario: &dyn Scenario,
    config: &SweepConfig,
    path: &Path,
    opts: &StreamOptions,
) -> Result<StreamSummary, String> {
    run_with_io(&RealIo, scenario, config, path, opts)
}

/// [`run`] with the report/checkpoint I/O routed through `io` — the entry
/// point of the fault-injection suite, which drives every persisted byte
/// through a scripted [`crate::spool_io::FaultIo`].
///
/// # Errors
///
/// Returns a message on configuration, planning or I/O failures.
pub fn run_with_io(
    io: &dyn SpoolIo,
    scenario: &dyn Scenario,
    config: &SweepConfig,
    path: &Path,
    opts: &StreamOptions,
) -> Result<StreamSummary, String> {
    config.validate().map_err(|e| e.to_string())?;
    let plan = scenario.plan(config)?;
    let layout = ShardLayout::new(plan.cells.len(), config.shard_size);
    let file = io
        .create(path)
        .map_err(|e| format!("creating {}: {e}", path.display()))?;
    let stream = ReportStream::begin(file, scenario.name(), config)
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    let ckpt_path = Checkpoint::path_for(path);
    let checkpoint = Checkpoint {
        scenario: scenario.name().to_string(),
        deterministic: opts.deterministic,
        config: config.clone(),
        cell_count: plan.cells.len(),
        shard_count: layout.shard_count(),
        header_offset: stream.offset(),
        header_digest: stream.digest(),
        shards: Vec::new(),
    };
    let mut ckpt_file = io
        .create(&ckpt_path)
        .map_err(|e| format!("creating {}: {e}", ckpt_path.display()))?;
    ckpt_file
        .write_all(checkpoint.render_header().as_bytes())
        .and_then(|()| ckpt_file.flush())
        .map_err(|e| format!("writing {}: {e}", ckpt_path.display()))?;
    let csv = match &opts.csv {
        Some(csv_path) => {
            let mut csv_file = File::create(csv_path)
                .map_err(|e| format!("creating {}: {e}", csv_path.display()))?;
            csv_file
                .write_all(csv_header(!opts.deterministic).as_bytes())
                .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
            Some(csv_file)
        }
        None => None,
    };
    drive(
        io,
        scenario.name(),
        &plan,
        config,
        opts,
        Resumption::fresh(),
        stream,
        ckpt_file,
        ckpt_path,
        path,
        csv,
    )
}

/// Continues an interrupted streaming sweep from its checkpoint sidecar.
/// `threads` overrides the interrupted run's worker count when given; the
/// report content is identical either way.
///
/// # Errors
///
/// Returns a message when the checkpoint is missing (the run completed, or
/// never started), when the report prefix fails digest verification, when
/// the scenario no longer plans the checkpointed cell count, or on I/O
/// failures.
pub fn resume(
    path: &Path,
    threads: Option<usize>,
    max_shards: Option<usize>,
) -> Result<StreamSummary, String> {
    resume_with_io(&RealIo, path, threads, max_shards)
}

/// [`resume`] with the interrupted scenario supplied by the caller instead
/// of looked up in the built-in registry — the resume path for sweeps whose
/// scenario came from a DSL document (see [`crate::dsl`]), which the
/// registry cannot reconstruct.  The scenario's name must match the one the
/// checkpoint recorded.
///
/// # Errors
///
/// As [`resume`], plus a message when `scenario`'s name disagrees with the
/// checkpoint.
pub fn resume_with_scenario(
    path: &Path,
    threads: Option<usize>,
    max_shards: Option<usize>,
    scenario: &dyn Scenario,
) -> Result<StreamSummary, String> {
    resume_impl(&RealIo, path, threads, max_shards, Some(scenario))
}

/// [`resume`] with the report/checkpoint I/O routed through `io`; see
/// [`run_with_io`].
///
/// # Errors
///
/// As [`resume`].
pub fn resume_with_io(
    io: &dyn SpoolIo,
    path: &Path,
    threads: Option<usize>,
    max_shards: Option<usize>,
) -> Result<StreamSummary, String> {
    resume_impl(io, path, threads, max_shards, None)
}

/// The shared resume core: `scenario` overrides the registry lookup when
/// the caller already holds the interrupted scenario (a parsed DSL
/// document); `None` resolves the checkpointed name among the built-ins.
fn resume_impl(
    io: &dyn SpoolIo,
    path: &Path,
    threads: Option<usize>,
    max_shards: Option<usize>,
    scenario: Option<&dyn Scenario>,
) -> Result<StreamSummary, String> {
    let ckpt_path = Checkpoint::path_for(path);
    let text = io.read_to_string(&ckpt_path).map_err(|e| {
        format!(
            "no checkpoint at {} ({e}); the sweep may already be complete",
            ckpt_path.display()
        )
    })?;
    let checkpoint = Checkpoint::parse(&text)?;
    let mut config = checkpoint.config.clone();
    if let Some(threads) = threads {
        config.threads = threads;
    }
    config.validate().map_err(|e| e.to_string())?;
    let registry_scenario =
        match scenario {
            Some(supplied) => {
                if supplied.name() != checkpoint.scenario {
                    return Err(format!(
                        "scenario '{}' does not match '{}' in the checkpoint",
                        supplied.name(),
                        checkpoint.scenario
                    ));
                }
                None
            }
            None => Some(crate::scenarios::find(&checkpoint.scenario).ok_or_else(|| {
                format!("unknown scenario '{}' in checkpoint", checkpoint.scenario)
            })?),
        };
    let scenario: &dyn Scenario = match (&registry_scenario, scenario) {
        (Some(found), _) => found.as_ref(),
        (None, Some(supplied)) => supplied,
        (None, None) => unreachable!("one branch above always yields a scenario"),
    };
    let plan = scenario.plan(&config)?;
    if plan.cells.len() != checkpoint.cell_count {
        return Err(format!(
            "scenario '{}' now plans {} cells but the checkpoint recorded {}; \
             refusing to resume across a plan change",
            checkpoint.scenario,
            plan.cells.len(),
            checkpoint.cell_count
        ));
    }
    let layout = ShardLayout::new(plan.cells.len(), config.shard_size);
    if layout.shard_count() != checkpoint.shard_count {
        return Err(format!(
            "shard layout changed: {} shards planned, {} checkpointed",
            layout.shard_count(),
            checkpoint.shard_count
        ));
    }
    let (end_offset, digest) = checkpoint.shards.last().map_or(
        (checkpoint.header_offset, checkpoint.header_digest),
        |record| (record.end_offset, record.digest),
    );

    // Verify the report prefix against the checkpoint digest (streamed in
    // fixed-size chunks — resume must stay O(shard), not O(report)), then
    // drop any bytes past it (a kill can land mid-append).
    let mut file = io
        .open_read_write(path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    let mut prefix_digest = FNV_OFFSET;
    let mut remaining = end_offset;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(chunk.len() as u64) as usize;
        file.read_exact(&mut chunk[..take])
            .map_err(|e| format!("report {} shorter than its checkpoint: {e}", path.display()))?;
        prefix_digest = fnv1a(prefix_digest, &chunk[..take]);
        remaining -= take as u64;
    }
    if prefix_digest != digest {
        return Err(format!(
            "report {} does not match its checkpoint (digest mismatch); \
             it was edited or belongs to a different run",
            path.display()
        ));
    }
    file.truncate_to(end_offset)
        .map_err(|e| format!("truncating {}: {e}", path.display()))?;
    let cells_done: usize = checkpoint.shards.iter().map(|s| s.cells).sum();
    let stream = ReportStream::resume_at(file, end_offset, digest, cells_done);
    let ckpt_file = io
        .open_append(&ckpt_path)
        .map_err(|e| format!("opening {}: {e}", ckpt_path.display()))?;
    let opts = StreamOptions {
        deterministic: checkpoint.deterministic,
        max_shards,
        csv: None,
    };
    drive(
        io,
        &checkpoint.scenario,
        &plan,
        &config,
        &opts,
        Resumption::from_checkpoint(&checkpoint),
        stream,
        ckpt_file,
        ckpt_path,
        path,
        None,
    )
}

/// What an earlier (interrupted) run already contributed.
struct Resumption {
    first_shard: usize,
    passed: usize,
    failed: usize,
    panicked: usize,
    exhausted: usize,
    elapsed_micros: u64,
    cache: CacheStats,
    walls: Vec<u64>,
}

impl Resumption {
    fn fresh() -> Self {
        Resumption {
            first_shard: 0,
            passed: 0,
            failed: 0,
            panicked: 0,
            exhausted: 0,
            elapsed_micros: 0,
            cache: CacheStats::default(),
            walls: Vec::new(),
        }
    }

    fn from_checkpoint(checkpoint: &Checkpoint) -> Self {
        let mut prior = Resumption::fresh();
        prior.first_shard = checkpoint.shards.len();
        for record in &checkpoint.shards {
            prior.passed += record.passed;
            prior.failed += record.failed;
            prior.panicked += record.panicked;
            prior.exhausted += record.exhausted;
            prior.walls.extend_from_slice(&record.wall_micros);
        }
        if let Some(last) = checkpoint.shards.last() {
            prior.elapsed_micros = last.elapsed_micros;
            prior.cache = last.cache;
        }
        prior
    }
}

/// The shared driver behind [`run`] and [`resume`]: executes shards
/// `prior.first_shard..`, appends them to `stream` and the checkpoint,
/// and finishes the document unless `max_shards` stops it early.
#[allow(clippy::too_many_arguments)]
fn drive(
    io: &dyn SpoolIo,
    scenario_name: &str,
    plan: &Plan,
    config: &SweepConfig,
    opts: &StreamOptions,
    prior: Resumption,
    mut stream: ReportStream<Box<dyn SpoolFile>>,
    mut ckpt_file: Box<dyn SpoolFile>,
    ckpt_path: PathBuf,
    report_path: &Path,
    mut csv: Option<File>,
) -> Result<StreamSummary, String> {
    let layout = ShardLayout::new(plan.cells.len(), config.shard_size);
    let shard_count = layout.shard_count();
    let stop_shard = opts
        .max_shards
        .map_or(shard_count, |m| (prior.first_shard + m).min(shard_count));
    let cache_before = plan.cache_stats();
    let started = Instant::now();

    let mut passed = prior.passed;
    let mut failed = prior.failed;
    let mut panicked = prior.panicked;
    let mut exhausted = prior.exhausted;
    let mut walls = prior.walls;
    let mut cells_run = 0usize;
    let mut shards_written = prior.first_shard;
    let mut failures: Vec<(String, String)> = Vec::new();

    run_shards(
        &plan.cells,
        config,
        layout,
        prior.first_shard,
        stop_shard,
        &mut |shard, results: Vec<CellResult>| {
            let mut record = ShardRecord {
                shard,
                cells: results.len(),
                passed: 0,
                failed: 0,
                panicked: 0,
                exhausted: 0,
                end_offset: 0,
                digest: 0,
                elapsed_micros: 0,
                cache: CacheStats::default(),
                wall_micros: Vec::with_capacity(results.len()),
            };
            for cell in &results {
                if cell.passed() {
                    record.passed += 1;
                } else if cell.panicked() {
                    record.panicked += 1;
                } else {
                    record.failed += 1;
                }
                if cell.exhausted() {
                    record.exhausted += 1;
                }
                if !cell.passed() {
                    let what = match &cell.outcome {
                        Ok(outcome) => outcome.verdict.clone(),
                        Err(message) => format!("panic: {message}"),
                    };
                    failures.push((cell.spec.id.clone(), what));
                }
                record.wall_micros.push(cell.wall.as_micros() as u64);
            }
            stream
                .write_cells(&results)
                .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
            if let Some(csv_file) = csv.as_mut() {
                let rows: String = results
                    .iter()
                    .map(|cell| csv_row(scenario_name, cell, !opts.deterministic))
                    .collect();
                csv_file
                    .write_all(rows.as_bytes())
                    .map_err(|e| format!("writing csv: {e}"))?;
            }
            record.end_offset = stream.offset();
            record.digest = stream.digest();
            record.elapsed_micros = prior.elapsed_micros + started.elapsed().as_micros() as u64;
            record.cache = prior.cache.merged(&plan.cache_stats().since(&cache_before));
            ckpt_file
                .write_all(Checkpoint::render_shard(&record).as_bytes())
                .and_then(|()| ckpt_file.flush())
                .map_err(|e| format!("writing {}: {e}", ckpt_path.display()))?;
            passed += record.passed;
            failed += record.failed;
            panicked += record.panicked;
            exhausted += record.exhausted;
            cells_run += record.cells;
            walls.extend_from_slice(&record.wall_micros);
            shards_written += 1;
            Ok(())
        },
    )?;

    let total_wall = started.elapsed();
    let cache = plan.cache_stats().since(&cache_before);
    let completed = shards_written == shard_count;
    if completed {
        let summary = summary_json(plan.cells.len(), passed, failed, panicked, exhausted);
        let perf = (!opts.deterministic).then(|| {
            perf_json(
                config.threads,
                Duration::from_micros(prior.elapsed_micros) + total_wall,
                &walls,
                &prior.cache.merged(&cache),
            )
        });
        stream
            .finish(summary, perf)
            .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
        io.remove_file(&ckpt_path)
            .map_err(|e| format!("removing {}: {e}", ckpt_path.display()))?;
    }
    Ok(StreamSummary {
        scenario: scenario_name.to_string(),
        config: config.clone(),
        cell_count: plan.cells.len(),
        cells_run,
        passed,
        failed,
        panicked,
        exhausted,
        shards_written,
        shard_count,
        completed,
        total_wall,
        cumulative_wall: Duration::from_micros(prior.elapsed_micros) + total_wall,
        cumulative_cache: prior.cache.merged(&cache),
        cache,
        failures,
    })
}

/// Executes shards `first_shard..stop_shard` over the configured worker
/// count, invoking `emit` with each shard's results **in shard order** on
/// the calling thread.
///
/// Workers claim shard indices from a shared counter, but a claim gate
/// keeps every claim within a fixed window of the last emitted shard, and
/// the result channel is bounded — so shards in flight (executing, queued,
/// or held for reordering) never exceed the window, whatever the shard
/// cost skew.  With one effective worker the calling thread runs shards
/// directly; the emitted bytes are identical either way.
fn run_shards(
    cells: &[PlannedCell],
    config: &SweepConfig,
    layout: ShardLayout,
    first_shard: usize,
    stop_shard: usize,
    emit: &mut dyn FnMut(usize, Vec<CellResult>) -> Result<(), String>,
) -> Result<(), String> {
    let run_shard = |shard: usize| -> Vec<CellResult> {
        layout
            .shard_range(shard)
            .map(|index| run_cell(&cells[index], index, config))
            .collect()
    };
    if first_shard >= stop_shard {
        return Ok(());
    }
    let remaining_cells =
        layout.shard_range(stop_shard - 1).end - layout.shard_range(first_shard).start;
    let workers = effective_workers(config.threads, remaining_cells);
    if workers <= 1 || stop_shard - first_shard <= 1 {
        for shard in first_shard..stop_shard {
            emit(shard, run_shard(shard))?;
        }
        return Ok(());
    }

    run_shards_sync::<StdSync, _>(
        &run_shard,
        first_shard,
        stop_shard,
        workers,
        workers * 2,
        emit,
    )
}

/// The claim-gate/bounded-channel/in-order-writer core of [`run_shards`],
/// generic over the sync facade.  Production monomorphises to plain
/// `std::sync` via [`StdSync`]; the model suite instantiates
/// [`interleave::ModelSync`] to check, under every explored schedule, that
/// shards emit strictly in order, claims stay within `window` of the
/// emitted frontier, and the pipeline never deadlocks — including under
/// injected spurious wakeups of the gate's condvar.
fn run_shards_sync<S, F>(
    run_shard: &F,
    first_shard: usize,
    stop_shard: usize,
    workers: usize,
    window: usize,
    emit: &mut dyn FnMut(usize, Vec<CellResult>) -> Result<(), String>,
) -> Result<(), String>
where
    S: SyncFacade,
    F: Fn(usize) -> Vec<CellResult> + Sync,
{
    let next = S::AtomicUsize::new(first_shard);
    let abort = S::AtomicBool::new(false);
    let gate = (S::Mutex::new(first_shard), S::Condvar::new());
    let (tx, rx) = S::sync_channel::<(usize, Vec<CellResult>)>(window);

    let worker_fns: Vec<_> = (0..workers)
        .map(|_| {
            let tx = tx.clone();
            let (next, abort, gate) = (&next, &abort, &gate);
            move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let shard = next.fetch_add(1, Ordering::Relaxed);
                if shard >= stop_shard {
                    break;
                }
                {
                    let (lock, cvar) = gate;
                    let mut emitted = lock.lock();
                    while shard >= *emitted + window && !abort.load(Ordering::Relaxed) {
                        emitted = cvar.wait(emitted);
                    }
                }
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                if tx.send((shard, run_shard(shard))).is_err() {
                    break;
                }
            }
        })
        .collect();
    drop(tx);

    let emit_error = S::scope_workers(worker_fns, || {
        let mut emit_error: Option<String> = None;
        let mut buffer: BTreeMap<usize, Vec<CellResult>> = BTreeMap::new();
        let mut next_emit = first_shard;
        while next_emit < stop_shard {
            if let Some(results) = buffer.remove(&next_emit) {
                match emit(next_emit, results) {
                    Ok(()) => {
                        next_emit += 1;
                        *gate.0.lock() = next_emit;
                        gate.1.notify_all();
                    }
                    Err(e) => {
                        emit_error = Some(e);
                        break;
                    }
                }
                continue;
            }
            match rx.recv() {
                Ok((shard, results)) => {
                    buffer.insert(shard, results);
                }
                Err(interleave::RecvError) => break,
            }
        }
        // Unblock and drain every worker before the scope joins them.
        abort.store(true, Ordering::Relaxed);
        gate.1.notify_all();
        while rx.recv().is_ok() {}
        emit_error
    });

    match emit_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellOutcome, CellSpec};
    use crate::executor;
    use crate::scenario::Scenario;
    use std::sync::atomic::AtomicU64;

    /// A scenario whose cells are instant, numerous, and deterministic —
    /// with one panicking cell and one budget-free failure to exercise the
    /// counters.
    struct SynthScenario;

    impl Scenario for SynthScenario {
        fn name(&self) -> &str {
            // Registered name so `resume` can find a real scenario; the
            // synthetic tests below never round-trip through the registry.
            "synth"
        }
        fn description(&self) -> &str {
            "test scenario: deterministic synthetic cells"
        }
        fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
            let mut plan = Plan::new();
            for i in 0..config.max_n {
                let spec = CellSpec::new(format!("synth/{i}"), [("i", i.to_string())]);
                plan.push(spec, move |seed| {
                    if i == 7 {
                        panic!("synthetic panic {i}");
                    }
                    let verdict = if i == 11 { "reject" } else { "accept" };
                    CellOutcome::new(verdict, i != 11).with_metric("seed_low", (seed % 64) as f64)
                });
            }
            Ok(plan)
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "ld-runner-stream-{}-{tag}-{n}.json",
            std::process::id()
        ))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(Checkpoint::path_for(path));
    }

    fn config(max_n: usize, threads: usize, shard_size: usize) -> SweepConfig {
        SweepConfig {
            max_n,
            threads,
            seed: 41,
            shard_size,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn shard_layout_partitions_exactly() {
        let layout = ShardLayout::new(37, 8);
        assert_eq!(layout.shard_count(), 5);
        assert_eq!(layout.shard_range(0), 0..8);
        assert_eq!(layout.shard_range(4), 32..37);
        let empty = ShardLayout::new(0, 8);
        assert_eq!(empty.shard_count(), 0);
    }

    #[test]
    fn streamed_bytes_equal_the_in_memory_rendering() {
        let config = config(23, 1, 4);
        let report = executor::execute(&SynthScenario, &config).unwrap();

        let mut stream = ReportStream::begin(Vec::new(), "synth", &config).unwrap();
        for chunk in report.cells.chunks(4) {
            stream.write_cells(chunk).unwrap();
        }
        let summary = summary_json(
            report.cells.len(),
            report.passed(),
            report.failed(),
            report.panicked(),
            report.exhausted(),
        );
        let bytes = stream.finish(summary, None).unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            report.deterministic_json()
        );
    }

    #[test]
    fn streamed_empty_cells_array_matches_inline_rendering() {
        let config = config(1, 1, 4);
        let stream = ReportStream::begin(Vec::new(), "synth", &config).unwrap();
        let bytes = stream.finish(summary_json(0, 0, 0, 0, 0), None).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("\"cells\": [],"), "{text}");
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn streaming_run_matches_in_memory_execute_across_threads() {
        let reference = executor::execute(&SynthScenario, &config(23, 1, 4))
            .unwrap()
            .deterministic_json();
        for threads in [1, 3] {
            let path = temp_path(&format!("threads{threads}"));
            let summary = run(
                &SynthScenario,
                &config(23, threads, 4),
                &path,
                &StreamOptions {
                    deterministic: true,
                    ..StreamOptions::default()
                },
            )
            .unwrap();
            assert!(summary.completed);
            assert_eq!(summary.passed, 21);
            assert_eq!(summary.failed, 1);
            assert_eq!(summary.panicked, 1);
            assert_eq!(summary.failures.len(), 2);
            assert!(!Checkpoint::path_for(&path).exists());
            let written = std::fs::read_to_string(&path).unwrap();
            assert_eq!(written, reference, "threads = {threads}");
            cleanup(&path);
        }
    }

    #[test]
    fn interrupted_run_leaves_a_valid_prefix_and_checkpoint() {
        let path = temp_path("interrupt");
        let summary = run(
            &SynthScenario,
            &config(23, 2, 4),
            &path,
            &StreamOptions {
                deterministic: true,
                max_shards: Some(3),
                ..StreamOptions::default()
            },
        )
        .unwrap();
        assert!(!summary.completed);
        assert_eq!(summary.shards_written, 3);
        assert_eq!(summary.cells_run, 12);
        let ckpt_path = Checkpoint::path_for(&path);
        let checkpoint = Checkpoint::parse(&std::fs::read_to_string(&ckpt_path).unwrap()).unwrap();
        assert_eq!(checkpoint.shards.len(), 3);
        assert_eq!(checkpoint.cell_count, 23);
        assert_eq!(checkpoint.shard_count, 6);
        // The report file is exactly the checkpointed prefix.
        let bytes = std::fs::read(&path).unwrap();
        let last = checkpoint.shards.last().unwrap();
        assert_eq!(bytes.len() as u64, last.end_offset);
        assert_eq!(fnv1a(FNV_OFFSET, &bytes), last.digest);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_lines_roundtrip_and_tolerate_a_torn_tail() {
        let config = config(23, 2, 4);
        let checkpoint = Checkpoint {
            scenario: "synth".to_string(),
            deterministic: false,
            config: config.clone(),
            cell_count: 23,
            shard_count: 6,
            header_offset: 120,
            header_digest: 999,
            shards: vec![ShardRecord {
                shard: 0,
                cells: 4,
                passed: 4,
                failed: 0,
                panicked: 0,
                exhausted: 0,
                end_offset: 400,
                digest: 77,
                elapsed_micros: 1234,
                cache: CacheStats {
                    hits: 1,
                    misses: 2,
                    entries: 3,
                },
                wall_micros: vec![10, 20, 30, 40],
            }],
        };
        let mut text = checkpoint.render_header();
        text.push_str(&Checkpoint::render_shard(&checkpoint.shards[0]));
        let parsed = Checkpoint::parse(&text).unwrap();
        assert_eq!(parsed, checkpoint);
        assert_eq!(parsed.config, config);

        // A torn final append parses as if the shard never completed.
        let torn = format!("{text}{{\"shard\":1,\"cells\":4,\"pas");
        let parsed = Checkpoint::parse(&torn).unwrap();
        assert_eq!(parsed.shards.len(), 1);

        // A torn *interior* line is corruption, not a kill artefact.
        let corrupt = format!(
            "{}{{\"bad\n{}",
            checkpoint.render_header(),
            text.lines().nth(1).unwrap()
        );
        assert!(Checkpoint::parse(&corrupt).is_err());
    }

    #[test]
    fn kill_and_resume_byte_matches_an_uninterrupted_run() {
        use crate::scenarios::RandomizedSweep;
        let config = SweepConfig {
            max_n: 8,
            threads: 2,
            seed: 13,
            shard_size: 1,
            ..SweepConfig::default()
        };
        let deterministic = StreamOptions {
            deterministic: true,
            ..StreamOptions::default()
        };
        let full = temp_path("full");
        let complete = run(&RandomizedSweep, &config, &full, &deterministic).unwrap();
        assert!(complete.completed && complete.shard_count >= 3);

        let killed = temp_path("killed");
        let partial = run(
            &RandomizedSweep,
            &config,
            &killed,
            &StreamOptions {
                deterministic: true,
                max_shards: Some(2),
                ..StreamOptions::default()
            },
        )
        .unwrap();
        assert!(!partial.completed);
        assert!(Checkpoint::path_for(&killed).exists());

        // Resume on a different thread count: content must not change.
        let resumed = resume(&killed, Some(1), None).unwrap();
        assert!(resumed.completed);
        assert_eq!(resumed.cell_count, complete.cell_count);
        assert_eq!(resumed.passed, complete.passed);
        // Cumulative accounting spans both processes: the resumed portion
        // alone is strictly less than the whole sweep.
        assert!(resumed.cells_run < resumed.cell_count);
        assert!(resumed.cumulative_wall > resumed.total_wall);
        assert!(resumed
            .bench_snapshot_json()
            .contains(&format!("\"cells\": {}", resumed.cell_count)));
        assert_eq!(
            std::fs::read(&full).unwrap(),
            std::fs::read(&killed).unwrap(),
            "resumed report must byte-match the uninterrupted run"
        );
        assert!(!Checkpoint::path_for(&killed).exists());

        // Resuming a finished run reports the absent checkpoint.
        let err = resume(&killed, None, None).unwrap_err();
        assert!(err.contains("complete"), "{err}");
        cleanup(&full);
        cleanup(&killed);
    }

    #[test]
    fn digest_mismatch_refuses_to_resume() {
        use crate::scenarios::RandomizedSweep;
        let path = temp_path("tamper");
        run(
            &RandomizedSweep,
            &SweepConfig {
                max_n: 8,
                threads: 1,
                seed: 13,
                shard_size: 1,
                ..SweepConfig::default()
            },
            &path,
            &StreamOptions {
                deterministic: true,
                max_shards: Some(2),
                ..StreamOptions::default()
            },
        )
        .unwrap();
        // Flip a byte inside the checkpointed prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        let err = resume(&path, None, None).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
        cleanup(&path);
    }

    /// Model suite: the claim-gate/bounded-channel/in-order-writer core
    /// under every schedule the explorer reaches.  Checks the three
    /// streaming invariants at once — emits strictly in shard order, no
    /// claim ever runs more than `window` ahead of the emitted frontier,
    /// and the pipeline drains without deadlock.  The gate's `Condvar`
    /// waits are also spurious-wakeup candidates here (see the assertion
    /// on `spurious_injected`), which is the machine-checked form of the
    /// loop-on-predicate audit.
    #[test]
    fn model_shard_pipeline_emits_in_order_within_window() {
        use interleave::ModelSync;
        use std::sync::atomic::AtomicUsize as StdAtomicUsize;

        const WORKERS: usize = 2;
        const WINDOW: usize = WORKERS * 2; // the production 2×workers bound
        const SHARDS: usize = 6; // > window, so the gate actually engages

        let report = interleave::model_with(interleave::Config::with_max_schedules(2000), || {
            // Observation counters (plain std atomics: they record state for
            // assertions but are not scheduling points).
            let emitted_frontier = StdAtomicUsize::new(0);
            let run_shard = |shard: usize| -> Vec<CellResult> {
                let frontier = emitted_frontier.load(Ordering::SeqCst);
                assert!(
                    shard < frontier + WINDOW,
                    "claim gate violated: shard {shard} ran with frontier {frontier}"
                );
                Vec::new()
            };
            let mut next_expect = 0usize;
            let mut emit = |shard: usize, _results: Vec<CellResult>| -> Result<(), String> {
                assert_eq!(shard, next_expect, "writer emitted out of order");
                next_expect += 1;
                emitted_frontier.store(next_expect, Ordering::SeqCst);
                Ok(())
            };
            run_shards_sync::<ModelSync, _>(&run_shard, 0, SHARDS, WORKERS, WINDOW, &mut emit)
                .expect("no emit error in model");
            assert_eq!(next_expect, SHARDS, "writer did not drain every shard");
        });
        assert!(
            report.schedules >= 1000,
            "expected >=1000 distinct schedules, explored {}",
            report.schedules
        );
    }

    /// Model suite: same invariants with the gate cinched to a window of 1,
    /// which forces workers to park on the gate's `Condvar` in essentially
    /// every schedule — so the explorer's spurious-wakeup injection gets
    /// real purchase on the production wait loop (satellite: the
    /// loop-on-predicate audit's regression test).
    #[test]
    fn model_tight_gate_survives_spurious_wakeups() {
        use interleave::ModelSync;
        use std::sync::atomic::AtomicUsize as StdAtomicUsize;

        const WORKERS: usize = 2;
        const WINDOW: usize = 1; // tighter than production: every claim gates
        const SHARDS: usize = 3;

        let report = interleave::model_with(interleave::Config::with_max_schedules(2000), || {
            let emitted_frontier = StdAtomicUsize::new(0);
            let run_shard = |shard: usize| -> Vec<CellResult> {
                let frontier = emitted_frontier.load(Ordering::SeqCst);
                assert!(
                    shard < frontier + WINDOW,
                    "claim gate violated: shard {shard} ran with frontier {frontier}"
                );
                Vec::new()
            };
            let mut next_expect = 0usize;
            let mut emit = |shard: usize, _results: Vec<CellResult>| -> Result<(), String> {
                assert_eq!(shard, next_expect, "writer emitted out of order");
                next_expect += 1;
                emitted_frontier.store(next_expect, Ordering::SeqCst);
                Ok(())
            };
            run_shards_sync::<ModelSync, _>(&run_shard, 0, SHARDS, WORKERS, WINDOW, &mut emit)
                .expect("no emit error in model");
            assert_eq!(next_expect, SHARDS, "writer did not drain every shard");
        });
        assert!(
            report.spurious_injected > 0,
            "exploration never exercised a spurious gate wakeup"
        );
    }

    /// Regression: the gate's wait MUST be loop-on-predicate.  This model
    /// reproduces the bug the audit guards against — an `if`-guarded wait
    /// on the claim gate lets a spurious wakeup run a shard beyond the
    /// window — and asserts the checker catches it.
    #[test]
    fn model_if_guarded_gate_is_caught_by_spurious_wakeup() {
        use interleave::{Condvar as MCondvar, ModelSync, Mutex as MMutex, SyncFacade};
        use std::sync::Arc;

        type M = <ModelSync as SyncFacade>::Mutex<usize>;

        let failure = interleave::check(interleave::Config::default(), || {
            let window = 1usize;
            let gate: Arc<(M, MCondvar)> = Arc::new((MMutex::new(0), MCondvar::new()));
            let gate2 = Arc::clone(&gate);
            let worker = interleave::thread::spawn(move || {
                let shard = 1usize;
                let (lock, cvar) = &*gate2;
                let emitted = lock.lock();
                // BUG (deliberate): `if` instead of `while` — a spurious
                // wakeup proceeds with the predicate still false.
                let emitted = if shard >= *emitted + window {
                    cvar.wait(emitted)
                } else {
                    emitted
                };
                assert!(
                    shard < *emitted + window,
                    "claim gate violated after wakeup"
                );
            });
            {
                let (lock, cvar) = &*gate;
                *lock.lock() = 1; // emit shard 0, advance the frontier
                cvar.notify_all();
            }
            worker.join();
        })
        .expect_err("if-guarded gate wait must be caught");
        assert!(
            failure.message.contains("claim gate violated"),
            "unexpected failure: {failure}"
        );
    }
}
