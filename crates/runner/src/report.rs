//! Machine-readable run records.
//!
//! One sweep produces one [`RunReport`], which renders three ways:
//!
//! * [`RunReport::to_json`] — the full record: config, every cell (params,
//!   seed, verdict, metrics), and a `perf` section (wall times, thread
//!   count, cache hit rate).
//! * [`RunReport::deterministic_json`] — the same record *minus* everything
//!   timing- or parallelism-dependent.  Two runs of the same scenario with
//!   the same seed and `max_n` must agree on it byte for byte, whatever the
//!   thread count — the determinism harness asserts exactly this.
//! * [`RunReport::to_csv`] — one row per cell for spreadsheet-shaped
//!   consumers.
//!
//! [`RunReport::bench_snapshot_json`] additionally distils a perf snapshot
//! (`BENCH_runner.json` at the repo root) so the repo's performance
//! trajectory is recorded alongside its correctness results.
//!
//! The current schema is `ld-runner/report/v3`: a header (schema, scenario,
//! config), the `cells` array in cell-index order, and a trailing `summary`
//! object — summary *after* cells, so the document can be written as an
//! append-only stream by [`crate::stream`] without buffering the sweep.
//! The free functions in this module ([`config_json`], [`cell_json`],
//! [`summary_json`], [`perf_json`], [`csv_header`], [`csv_row`]) are the
//! single source of the rendered bytes: the in-memory renderer below and
//! the streaming writer compose the same fragments, which is what keeps
//! their outputs byte-identical (a differential test asserts exactly this).
//! [`crate::summary::ReportSummary`] reads v3 plus the legacy v2 and v1
//! documents back.

use crate::cell::CellResult;
use crate::json::Json;
use crate::scenario::SweepConfig;
use ld_local::cache::CacheStats;
use std::path::Path;
use std::time::Duration;

/// The complete record of one executed sweep.
#[derive(Debug)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// The configuration the sweep ran under.
    pub config: SweepConfig,
    /// Per-cell results, in planning order.
    pub cells: Vec<CellResult>,
    /// Wall-clock time of the whole sweep.
    pub total_wall: Duration,
    /// Canonical-view-cache counters accumulated during this run.
    pub cache: CacheStats,
}

impl RunReport {
    /// Assembles a report (used by the executor).
    pub fn new(
        scenario: &str,
        config: SweepConfig,
        cells: Vec<CellResult>,
        total_wall: Duration,
        cache: CacheStats,
    ) -> Self {
        RunReport {
            scenario: scenario.to_string(),
            config,
            cells,
            total_wall,
            cache,
        }
    }

    /// Number of cells that completed with a matching verdict.
    pub fn passed(&self) -> usize {
        self.cells.iter().filter(|c| c.passed()).count()
    }

    /// Number of cells that completed with a verdict that missed its
    /// expectation.
    pub fn failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.passed() && !c.panicked())
            .count()
    }

    /// Number of cells that panicked.
    pub fn panicked(&self) -> usize {
        self.cells.iter().filter(|c| c.panicked()).count()
    }

    /// Number of cells that completed but had their work budget exhausted
    /// (an explicit outcome, counted separately from failures).
    pub fn exhausted(&self) -> usize {
        self.cells.iter().filter(|c| c.exhausted()).count()
    }

    /// The cache hit rate over this run.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// The deterministic document: identical across thread counts and
    /// machines for a fixed (scenario, seed, max_n, radius, budgets).
    ///
    /// Schema `ld-runner/report/v3`; see `crates/runner/DESIGN.md` for the
    /// v2 → v3 migration notes, and [`crate::summary::ReportSummary`] for a
    /// reader that accepts all three schema versions.
    fn deterministic_doc(&self) -> Json {
        Json::object()
            .set("schema", SCHEMA)
            .set("scenario", self.scenario.as_str())
            .set("config", config_json(&self.config))
            .set(
                "cells",
                Json::Arr(self.cells.iter().map(cell_json).collect()),
            )
            .set(
                "summary",
                summary_json(
                    self.cells.len(),
                    self.passed(),
                    self.failed(),
                    self.panicked(),
                    self.exhausted(),
                ),
            )
    }

    /// Renders the deterministic document (no timings, no thread count, no
    /// cache counters).
    pub fn deterministic_json(&self) -> String {
        self.deterministic_doc().render()
    }

    /// Renders the full report: the deterministic document plus a `perf`
    /// section.
    pub fn to_json(&self) -> String {
        let walls: Vec<u64> = self
            .cells
            .iter()
            .map(|c| c.wall.as_micros() as u64)
            .collect();
        let perf = perf_json(self.config.threads, self.total_wall, &walls, &self.cache);
        self.deterministic_doc().set("perf", perf).render()
    }

    /// Renders one CSV row per cell: id, seed, status, verdict, pass,
    /// `;`-joined `k=v` params and metrics, and wall micros.
    pub fn to_csv(&self) -> String {
        self.render_csv(true)
    }

    /// [`RunReport::to_csv`] without the `wall_micros` column — the CSV
    /// counterpart of [`RunReport::deterministic_json`]: identical across
    /// thread counts and machines for a fixed (scenario, seed, max_n).
    pub fn deterministic_csv(&self) -> String {
        self.render_csv(false)
    }

    fn render_csv(&self, with_wall: bool) -> String {
        let mut out = csv_header(with_wall);
        for cell in &self.cells {
            out.push_str(&csv_row(&self.scenario, cell, with_wall));
        }
        out
    }

    /// The perf snapshot written to `BENCH_runner.json`: scenario, scale,
    /// wall time, throughput and cache effectiveness in one flat object.
    pub fn bench_snapshot_json(&self) -> String {
        Json::object()
            .set("bench", "ldx-sweep")
            .set("scenario", self.scenario.as_str())
            .set("cells", self.cells.len())
            .set("max_n", self.config.max_n)
            .set("threads", self.config.threads)
            .set("seed", self.config.seed)
            .set("passed", self.passed())
            .set("failed", self.failed())
            .set("panicked", self.panicked())
            .set("exhausted", self.exhausted())
            .set("total_wall_micros", self.total_wall.as_micros() as u64)
            .set(
                "cells_per_second",
                if self.total_wall.as_secs_f64() > 0.0 {
                    self.cells.len() as f64 / self.total_wall.as_secs_f64()
                } else {
                    0.0
                },
            )
            .set("cache_hits", self.cache.hits)
            .set("cache_misses", self.cache.misses)
            .set("cache_hit_rate", self.cache.hit_rate())
            .render()
    }

    /// Writes `contents` produced by one of the renderers to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
        std::fs::write(path, contents)
    }
}

/// The schema identifier this reporter (and the streaming writer) emits.
pub const SCHEMA: &str = "ld-runner/report/v3";

/// The `config` object of a v3 document: the deterministic sweep knobs,
/// with unset options rendered as `null`.
pub fn config_json(config: &SweepConfig) -> Json {
    let optional_u64 = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
    Json::object()
        .set("max_n", config.max_n)
        .set("seed", config.seed)
        .set(
            "radius",
            config.radius.map_or(Json::Null, |r| Json::U64(r as u64)),
        )
        .set("node_budget", optional_u64(config.node_budget))
        .set("view_budget", optional_u64(config.view_budget))
        .set("shard_size", config.shard_size)
}

/// The deterministic record of one cell (no timing).
pub fn cell_json(cell: &CellResult) -> Json {
    let mut obj = Json::object()
        .set("id", cell.spec.id.as_str())
        .set(
            "params",
            Json::Obj(
                cell.spec
                    .params
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                    .collect(),
            ),
        )
        .set("seed", cell.seed);
    match &cell.outcome {
        Ok(outcome) => {
            obj = obj
                .set("status", "completed")
                .set("verdict", outcome.verdict.as_str())
                .set("pass", outcome.pass)
                .set(
                    "metrics",
                    Json::Obj(
                        outcome
                            .metrics
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::F64(*v)))
                            .collect(),
                    ),
                );
            // Budgeted cells report their spend and whether they were cut
            // off; unbudgeted cells omit the key.
            if let Some(budget) = outcome.budget {
                obj = obj.set(
                    "budget",
                    Json::object()
                        .set("exhausted", budget.exhausted)
                        .set("nodes_visited", budget.nodes_visited)
                        .set("views_materialized", budget.views_materialized),
                );
            }
        }
        Err(message) => {
            obj = obj.set("status", "panicked").set("error", message.as_str());
        }
    }
    obj
}

/// The trailing `summary` object of a v3 document.
pub fn summary_json(
    cell_count: usize,
    passed: usize,
    failed: usize,
    panicked: usize,
    exhausted: usize,
) -> Json {
    Json::object()
        .set("cell_count", cell_count)
        .set("passed", passed)
        .set("failed", failed)
        .set("panicked", panicked)
        .set("exhausted", exhausted)
}

/// The `perf` object of a full (non-deterministic) report.
pub fn perf_json(threads: usize, total_wall: Duration, walls: &[u64], cache: &CacheStats) -> Json {
    Json::object()
        .set("threads", threads)
        .set("total_wall_micros", total_wall.as_micros() as u64)
        .set(
            "cells_per_second",
            if total_wall.as_secs_f64() > 0.0 {
                walls.len() as f64 / total_wall.as_secs_f64()
            } else {
                0.0
            },
        )
        .set(
            "cell_wall_micros",
            Json::Arr(walls.iter().map(|&w| Json::U64(w)).collect()),
        )
        .set(
            "cache",
            Json::object()
                .set("hits", cache.hits)
                .set("misses", cache.misses)
                .set("entries", cache.entries)
                .set("hit_rate", cache.hit_rate()),
        )
}

/// The CSV header row (shared by the in-memory and streaming renderers).
pub fn csv_header(with_wall: bool) -> String {
    let mut out = String::from("scenario,cell,seed,status,verdict,pass,params,metrics,budget");
    if with_wall {
        out.push_str(",wall_micros");
    }
    out.push('\n');
    out
}

/// One CSV row for `cell`, newline-terminated.
pub fn csv_row(scenario: &str, cell: &CellResult, with_wall: bool) -> String {
    let params = cell
        .spec
        .params
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(";");
    let (status, verdict, pass, metrics, budget) = match &cell.outcome {
        Ok(outcome) => (
            "completed",
            outcome.verdict.clone(),
            outcome.pass.to_string(),
            outcome
                .metrics
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(";"),
            outcome.budget.map_or(String::new(), |b| {
                format!(
                    "exhausted={};nodes_visited={};views_materialized={}",
                    b.exhausted, b.nodes_visited, b.views_materialized
                )
            }),
        ),
        Err(message) => (
            "panicked",
            message.replace('\n', " "),
            "false".to_string(),
            String::new(),
            String::new(),
        ),
    };
    let mut out = format!(
        "{},{},{},{},{},{},{},{},{}",
        scenario,
        csv_field(&cell.spec.id),
        cell.seed,
        status,
        csv_field(&verdict),
        pass,
        csv_field(&params),
        csv_field(&metrics),
        csv_field(&budget),
    );
    if with_wall {
        out.push_str(&format!(",{}", cell.wall.as_micros()));
    }
    out.push('\n');
    out
}

/// Quotes a CSV field when it contains separators or quotes.
fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellOutcome, CellSpec};

    fn sample_report() -> RunReport {
        use ld_local::enumeration::BudgetUsage;
        let cells = vec![
            CellResult {
                spec: CellSpec::new("a/one", [("n", "8".to_string())]),
                seed: 11,
                outcome: Ok(CellOutcome::new("accept", true).with_metric("views", 2.0)),
                wall: Duration::from_micros(50),
            },
            CellResult {
                spec: CellSpec::new("a/two", [("n", "9".to_string())]),
                seed: 12,
                outcome: Err("boom, with comma".to_string()),
                wall: Duration::from_micros(60),
            },
            CellResult {
                spec: CellSpec::new("a/three", [("n", "10".to_string())]),
                seed: 13,
                outcome: Ok(
                    CellOutcome::new("exhausted", true).with_budget(BudgetUsage {
                        nodes_visited: 512,
                        views_materialized: 9,
                        exhausted: true,
                    }),
                ),
                wall: Duration::from_micros(70),
            },
        ];
        RunReport::new(
            "sample",
            SweepConfig {
                max_n: 16,
                threads: 4,
                seed: 3,
                node_budget: Some(512),
                ..SweepConfig::default()
            },
            cells,
            Duration::from_millis(2),
            CacheStats {
                hits: 3,
                misses: 1,
                entries: 1,
            },
        )
    }

    #[test]
    fn json_contains_cells_and_perf() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ld-runner/report/v3\""));
        assert!(json.contains("\"verdict\": \"accept\""));
        assert!(json.contains("\"status\": \"panicked\""));
        assert!(json.contains("\"hit_rate\": 0.75"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"node_budget\": 512"));
        assert!(json.contains("\"view_budget\": null"));
        assert!(json.contains("\"shard_size\": 16"));
        assert!(json.contains("\"nodes_visited\": 512"));
        assert!(json.contains("\"exhausted\": 1"));
        // v3 layout: the summary object trails the cells array, so the
        // document is writable as an append-only stream.
        let cells_at = json.find("\"cells\": [").unwrap();
        let summary_at = json.find("\"summary\": {").unwrap();
        assert!(summary_at > cells_at);
    }

    #[test]
    fn deterministic_json_excludes_timing_and_threads() {
        let report = sample_report();
        let json = report.deterministic_json();
        assert!(!json.contains("wall"));
        assert!(!json.contains("threads"));
        assert!(!json.contains("hit_rate"));
        assert!(json.contains("\"seed\": 3"));
    }

    #[test]
    fn counters() {
        let report = sample_report();
        assert_eq!(report.passed(), 2);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.panicked(), 1);
        assert_eq!(report.exhausted(), 1);
        assert_eq!(report.cache_hit_rate(), 0.75);
    }

    #[test]
    fn csv_has_one_row_per_cell_and_quotes_commas() {
        let report = sample_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scenario,cell,seed"));
        assert!(lines[1].contains("views=2"));
        assert!(lines[2].contains("\"boom"));
        assert!(lines[3].contains("exhausted=true;nodes_visited=512"));
    }

    #[test]
    fn deterministic_csv_has_no_wall_column() {
        let report = sample_report();
        let csv = report.deterministic_csv();
        assert!(!csv.contains("wall"));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with(",budget"));
        // Identical cells produce identical deterministic CSV regardless of
        // the wall times recorded.
        let mut other = sample_report();
        for cell in &mut other.cells {
            cell.wall = Duration::from_micros(999);
        }
        assert_eq!(csv, other.deterministic_csv());
        assert_ne!(report.to_csv(), other.to_csv());
    }

    #[test]
    fn bench_snapshot_is_flat_and_complete() {
        let snapshot = sample_report().bench_snapshot_json();
        assert!(snapshot.contains("\"bench\": \"ldx-sweep\""));
        assert!(snapshot.contains("\"cells\": 3"));
        assert!(snapshot.contains("\"exhausted\": 1"));
        assert!(snapshot.contains("\"cache_hit_rate\": 0.75"));
    }
}
