//! The declarative scenario DSL: file-defined sweeps, no recompile.
//!
//! A scenario document is a JSON object (parsed with the in-repo
//! [`crate::json::Json`] reader) that composes graph family × size ladder ×
//! radius × id-regime × budgets × decider into a [`Plan`], loadable via
//! `ldx run --file <scenario.json>` and submittable to `ld-serve` daemons.
//! The parsed [`ScenarioDoc`] implements [`Scenario`], so every downstream
//! layer — the executor, the streaming pipeline, checkpoint resume, the
//! service spool — treats it exactly like a built-in module.
//!
//! The load-bearing contract: the committed `scenarios/section2-sweep.json`
//! and `scenarios/section2-sweep-r3.json` re-express those built-ins
//! *byte-identically* — their stanzas call the same `pub(crate)` planners
//! the built-in modules call, so the cell order, specs and outcomes cannot
//! diverge.  `tests/tests/dsl_differential.rs` and a CI byte-diff smoke pin
//! it.
//!
//! Every malformed document maps to a typed [`DslError`] carrying a stable
//! token and a process exit code, extending the [`ConfigError`] ladder
//! (`ldx` prints the token; `ld-serve` embeds it in HTTP 400 bodies).
//!
//! [`ConfigError`]: crate::scenario::ConfigError

use crate::cell::{CellOutcome, CellSpec};
use crate::json::Json;
use crate::scenario::{Plan, Scenario, SweepConfig, MAX_RADIUS};
use crate::scenarios;
use ld_constructions::section2::promise::CycleParamLabel;
use ld_constructions::section2::Section2Label;
use ld_deciders::fractional::{self, FractionalVerifier};
use ld_graph::{generators, Graph, LabeledGraph};
use ld_local::cache::ViewCache;
use ld_local::enumeration::distinct_oblivious_views_of_budgeted_cached;
use ld_local::property::{FractionalColoring, Property};
use ld_local::{decision, FnOblivious, IdAssignment, Input, ObliviousView, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;

/// The schema tag every scenario document must carry.
pub const SCHEMA: &str = "ld-runner/scenario/v1";

/// Restart cap for the connected-graph rejection loop of the random
/// families (a fresh derived seed per attempt; deterministic in the cell
/// seed).
const CONNECT_RETRIES: u64 = 64;

/// A structurally invalid scenario document: the typed parse- and
/// plan-time errors of the scenario DSL.  Like
/// [`ConfigError`](crate::scenario::ConfigError), every variant carries a
/// stable token and an exit code so scripts and HTTP clients can dispatch
/// without parsing prose.
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    /// The `--file` path does not exist or cannot be read.
    Unreadable {
        /// The offending path, verbatim.
        path: String,
        /// The underlying I/O error.
        detail: String,
    },
    /// The file is not valid JSON.
    Parse {
        /// The JSON reader's message.
        detail: String,
    },
    /// The document's `schema` field is missing or not [`SCHEMA`].
    Schema {
        /// What the document declared (or `"(absent)"`).
        found: String,
    },
    /// A required field is absent.
    MissingField {
        /// Where (e.g. `"document"`, `"workload 2 (sweep)"`).
        context: String,
        /// The missing field.
        field: String,
    },
    /// A field is present but malformed (wrong type, out-of-range value).
    InvalidField {
        /// Where the field lives.
        context: String,
        /// The offending field.
        field: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A field no stanza of this kind defines — the typed rejection that
    /// keeps typos from silently planning the default sweep.
    UnknownField {
        /// Where the field appeared.
        context: String,
        /// The unrecognised field.
        field: String,
    },
    /// A workload stanza kind the DSL does not define.
    UnknownWorkload {
        /// The unrecognised kind.
        kind: String,
    },
    /// A graph family the DSL does not define.
    UnknownFamily {
        /// The unrecognised family.
        family: String,
    },
    /// A decider the DSL does not define.
    UnknownDecider {
        /// The unrecognised decider.
        decider: String,
    },
    /// An identifier regime the DSL does not define.
    UnknownIdRegime {
        /// The unrecognised regime.
        regime: String,
    },
    /// A size ladder with impossible bounds (`from == 0`, `to < from`,
    /// `step == 0`, or a family-specific range violation).
    LadderBounds {
        /// What was wrong with the ladder.
        detail: String,
    },
    /// A stanza radius above [`MAX_RADIUS`] — same envelope, token and
    /// exit code as the config-level check.
    RadiusTooLarge {
        /// The rejected radius.
        radius: usize,
    },
    /// The document defines no workloads, so no plan could ever be built.
    EmptyWorkloads,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DslError::Unreadable { path, detail } => {
                write!(f, "cannot read scenario file {path}: {detail}")
            }
            DslError::Parse { detail } => write!(f, "scenario file is not valid JSON: {detail}"),
            DslError::Schema { found } => {
                write!(
                    f,
                    "unsupported scenario schema {found:?} (expected {SCHEMA:?})"
                )
            }
            DslError::MissingField { context, field } => {
                write!(f, "{context}: missing required field {field:?}")
            }
            DslError::InvalidField {
                context,
                field,
                detail,
            } => write!(f, "{context}: invalid field {field:?}: {detail}"),
            DslError::UnknownField { context, field } => {
                write!(f, "{context}: unknown field {field:?}")
            }
            DslError::UnknownWorkload { kind } => write!(f, "unknown workload kind {kind:?}"),
            DslError::UnknownFamily { family } => write!(f, "unknown graph family {family:?}"),
            DslError::UnknownDecider { decider } => write!(f, "unknown decider {decider:?}"),
            DslError::UnknownIdRegime { regime } => write!(f, "unknown id regime {regime:?}"),
            DslError::LadderBounds { detail } => write!(f, "invalid ladder: {detail}"),
            DslError::RadiusTooLarge { radius } => write!(
                f,
                "radius {radius} exceeds the supported maximum of {MAX_RADIUS}"
            ),
            DslError::EmptyWorkloads => write!(f, "scenario defines no workloads"),
        }
    }
}

impl std::error::Error for DslError {}

impl DslError {
    /// A stable, machine-readable identifier for the variant, in the style
    /// of [`ConfigError::token`](crate::scenario::ConfigError::token).
    pub fn token(&self) -> &'static str {
        match self {
            DslError::Unreadable { .. } => "unreadable-scenario-file",
            DslError::Parse { .. } => "scenario-parse",
            DslError::Schema { .. } => "scenario-schema",
            DslError::MissingField { .. } => "missing-field",
            DslError::InvalidField { .. } => "invalid-field",
            DslError::UnknownField { .. } => "unknown-field",
            DslError::UnknownWorkload { .. } => "unknown-workload",
            DslError::UnknownFamily { .. } => "unknown-family",
            DslError::UnknownDecider { .. } => "unknown-decider",
            DslError::UnknownIdRegime { .. } => "unknown-id-regime",
            DslError::LadderBounds { .. } => "ladder-bounds",
            DslError::RadiusTooLarge { .. } => "radius-too-large",
            DslError::EmptyWorkloads => "empty-workloads",
        }
    }

    /// The process exit code `ldx` terminates with for this variant.
    /// Unreadable files are usage errors (`64`, the path was wrong);
    /// an oversized radius shares `66` with the config-level check; every
    /// other document defect exits `68`, extending the `ConfigError` ladder
    /// (`65`–`67`) without colliding with it.
    pub fn exit_code(&self) -> u8 {
        match self {
            DslError::Unreadable { .. } => 64,
            DslError::RadiusTooLarge { .. } => 66,
            _ => 68,
        }
    }
}

/// The identifier regimes a `sweep` stanza may request — the same three
/// the built-in Section 2 sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdRegime {
    /// Identifiers `0..n` in node order.
    Consecutive,
    /// Identifiers `100..100+n`: deliberately large, in the spirit of the
    /// built-in `shifted` regime.
    Shifted,
    /// A seeded random permutation of `0..n`.
    Shuffled,
}

impl IdRegime {
    fn parse(token: &str) -> Result<IdRegime, DslError> {
        match token {
            "consecutive" => Ok(IdRegime::Consecutive),
            "shifted" => Ok(IdRegime::Shifted),
            "shuffled" => Ok(IdRegime::Shuffled),
            other => Err(DslError::UnknownIdRegime {
                regime: other.to_string(),
            }),
        }
    }

    fn token(&self) -> &'static str {
        match self {
            IdRegime::Consecutive => "consecutive",
            IdRegime::Shifted => "shifted",
            IdRegime::Shuffled => "shuffled",
        }
    }

    /// Mirrors the built-in Section 2 regimes (`shifted` starts at 100).
    fn assignment(&self, n: usize, seed: u64) -> IdAssignment {
        match self {
            IdRegime::Consecutive => IdAssignment::consecutive(n),
            IdRegime::Shifted => IdAssignment::consecutive_from(n, 100),
            IdRegime::Shuffled => {
                let mut rng = StdRng::seed_from_u64(seed);
                IdAssignment::shuffled(n, &mut rng)
            }
        }
    }
}

/// The deciders a `sweep` stanza may run over its family × ladder grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decider {
    /// The radius-1 degree-profile verifier: accept iff the centre's degree
    /// matches the family's invariant (paths ≤ 2, cycles = 2, `d`-regular
    /// = `d`, power-law ≥ `m`, circulants = their offset degree).
    DegreeProfile,
    /// A metric-only cell: count distinct oblivious views at the stanza
    /// radius under the sweep budget.
    DistinctViews,
}

impl Decider {
    fn parse(token: &str) -> Result<Decider, DslError> {
        match token {
            "degree-profile" => Ok(Decider::DegreeProfile),
            "distinct-views" => Ok(Decider::DistinctViews),
            other => Err(DslError::UnknownDecider {
                decider: other.to_string(),
            }),
        }
    }

    fn token(&self) -> &'static str {
        match self {
            Decider::DegreeProfile => "degree-profile",
            Decider::DistinctViews => "distinct-views",
        }
    }
}

/// The graph families a `sweep` stanza may draw instances from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Family {
    /// `n`-node paths.
    Path,
    /// `n`-node cycles (sizes below 3 are skipped).
    Cycle,
    /// Connected random `degree`-regular graphs (pairing model; sizes with
    /// `n·degree` odd or `degree >= n` are skipped).
    RandomRegular {
        /// The uniform degree (at least 2, so connectivity is reachable).
        degree: usize,
    },
    /// Power-law graphs via preferential attachment (sizes below
    /// `attach + 1` are skipped).
    PowerLaw {
        /// Edges per arriving node (the minimum degree).
        attach: usize,
    },
    /// Circulant graphs `C_n(offsets)` — deterministic bounded-degree
    /// expander-like constructions (sizes ≤ the largest offset are
    /// skipped).
    Circulant {
        /// The connection offsets; their gcd must be 1 so every swept size
        /// is connected.
        offsets: Vec<usize>,
    },
}

impl Family {
    fn token(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::RandomRegular { .. } => "random-regular",
            Family::PowerLaw { .. } => "power-law",
            Family::Circulant { .. } => "circulant",
        }
    }

    /// Can this family produce a (connected, simple) instance at size `n`?
    /// Unplannable ladder entries are skipped, the same convention the
    /// built-ins use for sizes that do not fit `max_n`.
    fn plannable(&self, n: usize) -> bool {
        match self {
            Family::Path => n >= 1,
            Family::Cycle => n >= 3,
            Family::RandomRegular { degree } => n * degree % 2 == 0 && *degree < n,
            Family::PowerLaw { attach } => n > *attach,
            Family::Circulant { offsets } => offsets.iter().all(|&o| o < n),
        }
    }

    /// Builds a connected instance, deterministically in `(n, seed)`.
    /// Random families redraw with derived seeds until connected; `None`
    /// after [`CONNECT_RETRIES`] failures (practically unreachable for the
    /// admitted parameters).
    fn build(&self, n: usize, seed: u64) -> Option<Graph> {
        match self {
            Family::Path => Some(generators::path(n)),
            Family::Cycle => Some(generators::cycle(n)),
            Family::RandomRegular { degree } => {
                for attempt in 0..CONNECT_RETRIES {
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    // Plannability rules out parameter errors, but the
                    // pairing model can still exhaust its internal restart
                    // cap at high degree — count that as a failed attempt,
                    // not a panic.
                    let Ok(graph) = generators::random_regular(n, *degree, &mut rng) else {
                        continue;
                    };
                    if graph.is_connected() {
                        return Some(graph);
                    }
                }
                None
            }
            Family::PowerLaw { attach } => {
                let mut rng = StdRng::seed_from_u64(seed);
                Some(
                    generators::preferential_attachment(n, *attach, &mut rng)
                        // ld-analyze: allow(D004, reason = "invariant: plannable() admits only n > attach, the generator's whole domain")
                        .expect("plannable sizes satisfy the generator's domain"),
                )
            }
            Family::Circulant { offsets } => Some(
                generators::circulant(n, offsets)
                    // ld-analyze: allow(D004, reason = "invariant: parse-time checks (non-empty, nonzero, gcd 1) plus plannable() keep offsets in the generator's domain")
                    .expect("plannable sizes satisfy the generator's domain"),
            ),
        }
    }

    /// The degree-profile invariant: does a centre of degree `deg` in an
    /// `n`-node instance look locally consistent with this family?
    fn degree_ok(&self, n: usize, deg: usize) -> bool {
        match self {
            Family::Path => deg <= 2,
            Family::Cycle => deg == 2,
            Family::RandomRegular { degree } => deg == *degree,
            Family::PowerLaw { attach } => deg >= *attach,
            Family::Circulant { offsets } => {
                let mut neighbors: Vec<usize> = offsets
                    .iter()
                    .flat_map(|&o| [o % n, (n - o % n) % n])
                    .collect();
                neighbors.sort_unstable();
                neighbors.dedup();
                deg == neighbors.len()
            }
        }
    }

    fn to_json(&self) -> Json {
        let doc = Json::object().set("kind", self.token());
        match self {
            Family::Path | Family::Cycle => doc,
            Family::RandomRegular { degree } => doc.set("degree", *degree),
            Family::PowerLaw { attach } => doc.set("attach", *attach),
            Family::Circulant { offsets } => {
                doc.set("offsets", Json::array(offsets.iter().copied()))
            }
        }
    }
}

/// An inclusive arithmetic size ladder: `from, from + step, … <= to`
/// (additionally clipped to `--max-n` at plan time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ladder {
    /// First size.
    pub from: usize,
    /// Inclusive upper bound.
    pub to: usize,
    /// Stride (at least 1).
    pub step: usize,
}

impl Ladder {
    fn validate(&self) -> Result<(), DslError> {
        if self.from == 0 {
            return Err(DslError::LadderBounds {
                detail: "from must be at least 1".to_string(),
            });
        }
        if self.to < self.from {
            return Err(DslError::LadderBounds {
                detail: format!("to = {} is below from = {}", self.to, self.from),
            });
        }
        if self.step == 0 {
            return Err(DslError::LadderBounds {
                detail: "step must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    fn values(&self) -> impl Iterator<Item = usize> {
        (self.from..=self.to).step_by(self.step)
    }

    fn to_json(self) -> Json {
        Json::object()
            .set("from", self.from)
            .set("to", self.to)
            .set("step", self.step)
    }
}

/// One workload stanza: a named cell-planning recipe plus its parameters.
/// The `section2-*`, `paths`, `path-coverage`, `grid-profile`,
/// `layered-tree-views` and `promise-views` stanzas call the *same*
/// `pub(crate)` planners as the built-in scenarios, which is what makes the
/// committed re-expressions byte-identical; `sweep` and
/// `fractional-coloring` open the new families.
///
/// Every stanza `radius` is a *default*, resolved through
/// [`SweepConfig::radius_or`] — an explicit `--radius` still overrides it,
/// exactly as it overrides the built-ins' natural radii.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The `section2-sweep` layered-tree portion.
    Section2Trees {
        /// Small-instance sample size.
        max_roots: usize,
        /// Default coverage radius.
        radius: usize,
    },
    /// The `section2-sweep` promise-cycle portion (decision + views).
    Section2Promise {
        /// Default views radius.
        radius: usize,
    },
    /// The closed-form path family of `section2-sweep-r3`.
    Paths {
        /// Default view radius.
        radius: usize,
        /// Stride between swept sizes.
        step: usize,
    },
    /// The cross-size path coverage cells of `section2-sweep-r3`.
    PathCoverage {
        /// Default view radius.
        radius: usize,
    },
    /// The grid incremental-profile differential cells of
    /// `section2-sweep-r3`.
    GridProfile {
        /// Default view radius.
        radius: usize,
    },
    /// The distinctly-labelled layered-tree cells of `section2-sweep-r3`.
    LayeredTreeViews {
        /// Default view radius.
        radius: usize,
        /// Small-instance sample size.
        max_roots: usize,
    },
    /// The promise-cycle views cells of `section2-sweep-r3`.
    PromiseViews {
        /// Default view radius.
        radius: usize,
    },
    /// A family × ladder × id-regime × decider grid over the new graph
    /// families.
    Sweep {
        /// The instance family.
        family: Family,
        /// The size ladder.
        ladder: Ladder,
        /// Default view radius for the distinct-views metric.
        radius: usize,
        /// Identifier regime.
        ids: IdRegime,
        /// The decider to run per cell.
        decider: Decider,
    },
    /// The fractional `(2k+1 : k)`-colouring family on odd cycles
    /// (arXiv 2012.01752), laddered over `k`.
    FractionalColoring {
        /// The ladder over `k` (clamped to `1..=31` at parse time).
        ladder: Ladder,
    },
}

impl Workload {
    fn kind(&self) -> &'static str {
        match self {
            Workload::Section2Trees { .. } => "section2-trees",
            Workload::Section2Promise { .. } => "section2-promise",
            Workload::Paths { .. } => "paths",
            Workload::PathCoverage { .. } => "path-coverage",
            Workload::GridProfile { .. } => "grid-profile",
            Workload::LayeredTreeViews { .. } => "layered-tree-views",
            Workload::PromiseViews { .. } => "promise-views",
            Workload::Sweep { .. } => "sweep",
            Workload::FractionalColoring { .. } => "fractional-coloring",
        }
    }

    fn to_json(&self) -> Json {
        let doc = Json::object().set("kind", self.kind());
        match self {
            Workload::Section2Trees { max_roots, radius } => {
                doc.set("max-roots", *max_roots).set("radius", *radius)
            }
            Workload::Section2Promise { radius } => doc.set("radius", *radius),
            Workload::Paths { radius, step } => doc.set("radius", *radius).set("step", *step),
            Workload::PathCoverage { radius } | Workload::GridProfile { radius } => {
                doc.set("radius", *radius)
            }
            Workload::LayeredTreeViews { radius, max_roots } => {
                doc.set("radius", *radius).set("max-roots", *max_roots)
            }
            Workload::PromiseViews { radius } => doc.set("radius", *radius),
            Workload::Sweep {
                family,
                ladder,
                radius,
                ids,
                decider,
            } => doc
                .set("family", family.to_json())
                .set("ladder", ladder.to_json())
                .set("radius", *radius)
                .set("ids", ids.token())
                .set("decider", decider.token()),
            Workload::FractionalColoring { ladder } => doc.set("ladder", ladder.to_json()),
        }
    }

    fn plan_into(
        &self,
        plan: &mut Plan,
        caches: &mut DslCaches,
        config: &SweepConfig,
    ) -> Result<(), String> {
        let budget = config.enumeration_budget();
        match self {
            Workload::Section2Trees { max_roots, radius } => {
                let cache = caches.tree(plan);
                scenarios::layered_tree_cells(
                    plan,
                    &cache,
                    config,
                    *max_roots,
                    config.radius_or(*radius),
                )?;
            }
            Workload::Section2Promise { radius } => {
                let cache = caches.promise(plan);
                scenarios::promise_decider_cells(plan, &cache, config, config.radius_or(*radius));
            }
            Workload::Paths { radius, step } => {
                let cache = caches.structural(plan);
                scenarios::path_cells(
                    plan,
                    &cache,
                    config,
                    config.radius_or(*radius),
                    budget,
                    *step,
                );
            }
            Workload::PathCoverage { radius } => {
                let cache = caches.structural(plan);
                scenarios::path_coverage_cells(
                    plan,
                    &cache,
                    config,
                    config.radius_or(*radius),
                    budget,
                );
            }
            Workload::GridProfile { radius } => {
                let cache = caches.structural(plan);
                scenarios::grid_profile_cells(
                    plan,
                    &cache,
                    config,
                    config.radius_or(*radius),
                    budget,
                );
            }
            Workload::LayeredTreeViews { radius, max_roots } => {
                let cache = caches.tree(plan);
                scenarios::tree_family_cells(
                    plan,
                    &cache,
                    config,
                    config.radius_or(*radius),
                    budget,
                    *max_roots,
                )?;
            }
            Workload::PromiseViews { radius } => {
                let cache = caches.promise(plan);
                scenarios::promise_views_only_cells(
                    plan,
                    &cache,
                    config,
                    config.radius_or(*radius),
                    budget,
                );
            }
            Workload::Sweep {
                family,
                ladder,
                radius,
                ids,
                decider,
            } => {
                let cache = caches.structural(plan);
                sweep_cells(
                    plan,
                    &cache,
                    config,
                    family,
                    ladder,
                    config.radius_or(*radius),
                    *ids,
                    *decider,
                );
            }
            Workload::FractionalColoring { ladder } => {
                let cache = caches.fractional(plan);
                fractional_cells(plan, &cache, config, ladder);
            }
        }
        Ok(())
    }
}

/// Lazily shared caches, one per label family, registered with the plan on
/// first use — which reproduces the built-ins' cache registration order
/// when a document re-expresses one (the `section2-sweep` doc touches
/// `Section2Label` before `CycleParamLabel`; the r3 doc touches `u8` first).
#[derive(Default)]
struct DslCaches {
    structural: Option<Arc<ViewCache<u8>>>,
    tree: Option<Arc<ViewCache<Section2Label>>>,
    promise: Option<Arc<ViewCache<CycleParamLabel>>>,
    fractional: Option<Arc<ViewCache<u64>>>,
}

impl DslCaches {
    fn structural(&mut self, plan: &mut Plan) -> Arc<ViewCache<u8>> {
        self.structural
            .get_or_insert_with(|| plan.share_cache())
            .clone()
    }

    fn tree(&mut self, plan: &mut Plan) -> Arc<ViewCache<Section2Label>> {
        self.tree.get_or_insert_with(|| plan.share_cache()).clone()
    }

    fn promise(&mut self, plan: &mut Plan) -> Arc<ViewCache<CycleParamLabel>> {
        self.promise
            .get_or_insert_with(|| plan.share_cache())
            .clone()
    }

    fn fractional(&mut self, plan: &mut Plan) -> Arc<ViewCache<u64>> {
        self.fractional
            .get_or_insert_with(|| plan.share_cache())
            .clone()
    }
}

/// Plans a `sweep` stanza: one cell per plannable ladder size within
/// `max_n`.
#[allow(clippy::too_many_arguments)]
fn sweep_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<u8>>,
    config: &SweepConfig,
    family: &Family,
    ladder: &Ladder,
    radius: usize,
    ids: IdRegime,
    decider: Decider,
) {
    let budget = config.enumeration_budget();
    for n in ladder.values() {
        if n > config.max_n || !family.plannable(n) {
            continue;
        }
        let mut params = vec![
            ("family", family.token().to_string()),
            ("n", n.to_string()),
            ("radius", radius.to_string()),
            ("ids", ids.token().to_string()),
            ("alg", decider.token().to_string()),
        ];
        match family {
            Family::RandomRegular { degree } => params.push(("degree", degree.to_string())),
            Family::PowerLaw { attach } => params.push(("attach", attach.to_string())),
            Family::Circulant { offsets } => params.push((
                "offsets",
                offsets
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("+"),
            )),
            _ => {}
        }
        params.push((
            "expect",
            match decider {
                Decider::DegreeProfile => "accept".to_string(),
                Decider::DistinctViews => "views<=n".to_string(),
            },
        ));
        let spec = CellSpec::new(
            format!(
                "dsl/{}/n={n}/radius={radius}/ids={}/alg={}",
                family.token(),
                ids.token(),
                decider.token()
            ),
            params,
        );
        let family = family.clone();
        let cache = cache.clone();
        plan.push(spec, move |seed| {
            let Some(graph) = family.build(n, seed) else {
                return CellOutcome::new("disconnected", false);
            };
            let labeled = LabeledGraph::uniform(graph, 0u8);
            match decider {
                Decider::DegreeProfile => {
                    let input = Input::new(labeled, ids.assignment(n, seed))
                        // ld-analyze: allow(D004, reason = "invariant: build() retries until connected and every id regime permutes 0..n")
                        .expect("built instances are connected with distinct ids");
                    let check = family.clone();
                    let verifier =
                        FnOblivious::new("degree-profile", 1, move |view: &ObliviousView<u8>| {
                            Verdict::from_bool(
                                check.degree_ok(n, view.neighbors_of_center().count()),
                            )
                        });
                    let accepted =
                        decision::run_oblivious_cached(&input, &verifier, &cache).accepted();
                    let verdict = if accepted { "accept" } else { "reject" };
                    let (views, usage) = distinct_oblivious_views_of_budgeted_cached(
                        input.labeled(),
                        radius,
                        &cache,
                        budget,
                    );
                    // The verifier's verdict is complete whatever the budget
                    // did; only the view-count metric is truncation-prone.
                    let outcome = CellOutcome::new(verdict, verdict == "accept")
                        .with_metric("nodes", n as f64);
                    if usage.exhausted {
                        return outcome.with_budget(usage);
                    }
                    outcome
                        .with_metric("distinct_views", views.len() as f64)
                        .with_budget(usage)
                }
                Decider::DistinctViews => {
                    let (views, usage) = distinct_oblivious_views_of_budgeted_cached(
                        &labeled, radius, &cache, budget,
                    );
                    if usage.exhausted {
                        return CellOutcome::new("exhausted", true).with_budget(usage);
                    }
                    // Distinct views are classes of centres, so the count
                    // can never exceed the node count.
                    CellOutcome::new(format!("views={}", views.len()), views.len() <= n)
                        .with_metric("nodes", n as f64)
                        .with_metric("distinct_views", views.len() as f64)
                        .with_budget(usage)
                }
            }
        });
    }
}

/// Plans a `fractional-coloring` stanza: a yes/no decision pair per ladder
/// `k` whose odd cycle `C_{2k+1}` fits `max_n`, each cross-checked against
/// the global [`FractionalColoring`] property.
fn fractional_cells(
    plan: &mut Plan,
    cache: &Arc<ViewCache<u64>>,
    config: &SweepConfig,
    ladder: &Ladder,
) {
    for k in ladder.values() {
        let n = 2 * k + 1;
        if n > config.max_n {
            continue;
        }
        for (instance, expect) in [("yes", "accept"), ("no", "reject")] {
            let spec = CellSpec::new(
                format!("fractional/k={k}/instance={instance}/alg=fractional-verifier"),
                [
                    ("family", "odd-cycle".to_string()),
                    ("k", k.to_string()),
                    ("p", n.to_string()),
                    ("q", k.to_string()),
                    ("instance", instance.to_string()),
                    ("alg", "fractional-verifier".to_string()),
                    ("expect", expect.to_string()),
                ],
            );
            let cache = cache.clone();
            plan.push(spec, move |_seed| {
                let k = k as u32;
                let labeled = match instance {
                    "yes" => fractional::yes_instance(k),
                    _ => fractional::no_instance(k),
                }
                // ld-analyze: allow(D004, reason = "invariant: parse() rejects fractional ladders past 31, the constructor's whole domain")
                .expect("parse-time ladder bounds keep k in 1..=31");
                let property = FractionalColoring::new(2 * k + 1, k);
                let globally_valid = property.contains(&labeled);
                let input = Input::new(labeled, IdAssignment::consecutive(n))
                    // ld-analyze: allow(D004, reason = "invariant: yes/no instances are odd cycles, connected with consecutive distinct ids")
                    .expect("odd cycles are connected with distinct ids");
                let verifier = FractionalVerifier::new(2 * k + 1, k);
                let accepted = decision::run_oblivious_cached(&input, &verifier, &cache).accepted();
                // The radius-1 verifier must agree with the global property
                // on every instance — a divergence fails the cell outright.
                if accepted != globally_valid {
                    return CellOutcome::new("decider-diverges", false)
                        .with_metric("nodes", n as f64);
                }
                let verdict = if accepted { "accept" } else { "reject" };
                CellOutcome::new(verdict, verdict == expect).with_metric("nodes", n as f64)
            });
        }
    }
}

/// A parsed scenario document: a name, a description and a list of
/// workload stanzas.  Implements [`Scenario`], so it plugs into every
/// sweep entry point the built-ins use.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDoc {
    name: String,
    description: String,
    node_budget: Option<u64>,
    view_budget: Option<u64>,
    workloads: Vec<Workload>,
}

impl ScenarioDoc {
    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// [`DslError::Unreadable`] (naming the path) when the file cannot be
    /// read; otherwise whatever [`ScenarioDoc::from_text`] reports.
    pub fn load_file(path: &Path) -> Result<ScenarioDoc, DslError> {
        let text = std::fs::read_to_string(path).map_err(|e| DslError::Unreadable {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        ScenarioDoc::from_text(&text)
    }

    /// Parses a scenario document from JSON text.
    ///
    /// # Errors
    ///
    /// [`DslError::Parse`] when the text is not JSON; otherwise whatever
    /// [`ScenarioDoc::parse`] reports.
    pub fn from_text(text: &str) -> Result<ScenarioDoc, DslError> {
        let json = Json::parse(text).map_err(|detail| DslError::Parse { detail })?;
        ScenarioDoc::parse(&json)
    }

    /// Parses a scenario document from an already-parsed [`Json`] value.
    /// Total on arbitrary values: every defect maps to a typed [`DslError`]
    /// (the no-panic property the DSL fuzz suite pins).
    ///
    /// # Errors
    ///
    /// The [`DslError`] describing the first defect encountered.
    pub fn parse(json: &Json) -> Result<ScenarioDoc, DslError> {
        let fields = expect_obj(json, "document")?;
        let mut name = None;
        let mut description = String::new();
        let mut node_budget = None;
        let mut view_budget = None;
        let mut workloads = None;
        let mut schema = None;
        for (key, value) in fields {
            match key.as_str() {
                "schema" => schema = Some(expect_str(value, "document", "schema")?.to_string()),
                "name" => {
                    let text = expect_str(value, "document", "name")?;
                    if text.is_empty() {
                        return Err(DslError::InvalidField {
                            context: "document".to_string(),
                            field: "name".to_string(),
                            detail: "must not be empty".to_string(),
                        });
                    }
                    name = Some(text.to_string());
                }
                "description" => {
                    description = expect_str(value, "document", "description")?.to_string();
                }
                "node-budget" => node_budget = Some(expect_u64(value, "document", "node-budget")?),
                "view-budget" => view_budget = Some(expect_u64(value, "document", "view-budget")?),
                "workloads" => match value {
                    Json::Arr(items) => {
                        let mut parsed = Vec::with_capacity(items.len());
                        for (index, item) in items.iter().enumerate() {
                            parsed.push(parse_workload(item, index)?);
                        }
                        workloads = Some(parsed);
                    }
                    _ => {
                        return Err(DslError::InvalidField {
                            context: "document".to_string(),
                            field: "workloads".to_string(),
                            detail: "must be an array of workload stanzas".to_string(),
                        })
                    }
                },
                other => {
                    return Err(DslError::UnknownField {
                        context: "document".to_string(),
                        field: other.to_string(),
                    })
                }
            }
        }
        match schema.as_deref() {
            Some(SCHEMA) => {}
            found => {
                return Err(DslError::Schema {
                    found: found.unwrap_or("(absent)").to_string(),
                })
            }
        }
        let name = name.ok_or_else(|| DslError::MissingField {
            context: "document".to_string(),
            field: "name".to_string(),
        })?;
        let workloads = workloads.ok_or(DslError::EmptyWorkloads)?;
        if workloads.is_empty() {
            return Err(DslError::EmptyWorkloads);
        }
        Ok(ScenarioDoc {
            name,
            description,
            node_budget,
            view_budget,
            workloads,
        })
    }

    /// Renders the document in canonical form: every field explicit
    /// (defaults included), fixed key order.  `parse(to_json(doc)) == doc`
    /// for every valid document — the fixed point the round-trip proptests
    /// pin.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .set("schema", SCHEMA)
            .set("name", self.name.as_str())
            .set("description", self.description.as_str());
        if let Some(budget) = self.node_budget {
            doc = doc.set("node-budget", budget);
        }
        if let Some(budget) = self.view_budget {
            doc = doc.set("view-budget", budget);
        }
        doc.set(
            "workloads",
            Json::Arr(self.workloads.iter().map(Workload::to_json).collect()),
        )
    }

    /// The workload stanzas, in plan order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }
}

impl Scenario for ScenarioDoc {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn plan(&self, config: &SweepConfig) -> Result<Plan, String> {
        // Document-level budgets are defaults: explicit --node-budget /
        // --view-budget flags always win.  A document with no budgets plans
        // under the exact config the built-ins see — which is what keeps
        // the committed re-expressions byte-identical.
        let mut effective = config.clone();
        if effective.node_budget.is_none() {
            effective.node_budget = self.node_budget;
        }
        if effective.view_budget.is_none() {
            effective.view_budget = self.view_budget;
        }
        let mut plan = Plan::new();
        let mut caches = DslCaches::default();
        for workload in &self.workloads {
            workload.plan_into(&mut plan, &mut caches, &effective)?;
        }
        if plan.cells.is_empty() {
            return Err(format!(
                "max_n = {} leaves no cell in any of the {} workloads of scenario {:?}",
                effective.max_n,
                self.workloads.len(),
                self.name
            ));
        }
        Ok(plan)
    }
}

fn expect_obj<'a>(json: &'a Json, context: &str) -> Result<&'a [(String, Json)], DslError> {
    match json {
        Json::Obj(fields) => Ok(fields),
        _ => Err(DslError::InvalidField {
            context: context.to_string(),
            field: "(value)".to_string(),
            detail: "must be an object".to_string(),
        }),
    }
}

fn expect_str<'a>(json: &'a Json, context: &str, field: &str) -> Result<&'a str, DslError> {
    json.as_str().ok_or_else(|| DslError::InvalidField {
        context: context.to_string(),
        field: field.to_string(),
        detail: "must be a string".to_string(),
    })
}

fn expect_u64(json: &Json, context: &str, field: &str) -> Result<u64, DslError> {
    json.as_u64().ok_or_else(|| DslError::InvalidField {
        context: context.to_string(),
        field: field.to_string(),
        detail: "must be an unsigned integer".to_string(),
    })
}

fn expect_usize(json: &Json, context: &str, field: &str) -> Result<usize, DslError> {
    let value = expect_u64(json, context, field)?;
    usize::try_from(value).map_err(|_| DslError::InvalidField {
        context: context.to_string(),
        field: field.to_string(),
        detail: format!("{value} does not fit usize"),
    })
}

fn expect_radius(json: &Json, context: &str) -> Result<usize, DslError> {
    let radius = expect_usize(json, context, "radius")?;
    if radius > MAX_RADIUS {
        return Err(DslError::RadiusTooLarge { radius });
    }
    Ok(radius)
}

fn parse_ladder(json: &Json, context: &str) -> Result<Ladder, DslError> {
    let fields = expect_obj(json, context)?;
    let mut from = None;
    let mut to = None;
    let mut step = 1usize;
    for (key, value) in fields {
        match key.as_str() {
            "from" => from = Some(expect_usize(value, context, "from")?),
            "to" => to = Some(expect_usize(value, context, "to")?),
            "step" => step = expect_usize(value, context, "step")?,
            other => {
                return Err(DslError::UnknownField {
                    context: format!("{context} ladder"),
                    field: other.to_string(),
                })
            }
        }
    }
    let ladder = Ladder {
        from: from.ok_or_else(|| DslError::MissingField {
            context: context.to_string(),
            field: "from".to_string(),
        })?,
        to: to.ok_or_else(|| DslError::MissingField {
            context: context.to_string(),
            field: "to".to_string(),
        })?,
        step,
    };
    ladder.validate()?;
    Ok(ladder)
}

fn parse_family(json: &Json, context: &str) -> Result<Family, DslError> {
    let fields = match json {
        // A bare string names a parameter-free family.
        Json::Str(token) => {
            return match token.as_str() {
                "path" => Ok(Family::Path),
                "cycle" => Ok(Family::Cycle),
                other => Err(DslError::UnknownFamily {
                    family: other.to_string(),
                }),
            }
        }
        _ => expect_obj(json, context)?,
    };
    let mut kind = None;
    let mut degree = None;
    let mut attach = None;
    let mut offsets = None;
    for (key, value) in fields {
        match key.as_str() {
            "kind" => kind = Some(expect_str(value, context, "kind")?.to_string()),
            "degree" => degree = Some(expect_usize(value, context, "degree")?),
            "attach" => attach = Some(expect_usize(value, context, "attach")?),
            "offsets" => match value {
                Json::Arr(items) => {
                    let mut parsed = Vec::with_capacity(items.len());
                    for item in items {
                        parsed.push(expect_usize(item, context, "offsets")?);
                    }
                    offsets = Some(parsed);
                }
                _ => {
                    return Err(DslError::InvalidField {
                        context: context.to_string(),
                        field: "offsets".to_string(),
                        detail: "must be an array of offsets".to_string(),
                    })
                }
            },
            other => {
                return Err(DslError::UnknownField {
                    context: format!("{context} family"),
                    field: other.to_string(),
                })
            }
        }
    }
    let kind = kind.ok_or_else(|| DslError::MissingField {
        context: context.to_string(),
        field: "kind".to_string(),
    })?;
    let reject_param = |field: &str, present: bool| {
        if present {
            Err(DslError::UnknownField {
                context: format!("{context} family ({kind})"),
                field: field.to_string(),
            })
        } else {
            Ok(())
        }
    };
    match kind.as_str() {
        "path" | "cycle" => {
            reject_param("degree", degree.is_some())?;
            reject_param("attach", attach.is_some())?;
            reject_param("offsets", offsets.is_some())?;
            Ok(if kind == "path" {
                Family::Path
            } else {
                Family::Cycle
            })
        }
        "random-regular" => {
            reject_param("attach", attach.is_some())?;
            reject_param("offsets", offsets.is_some())?;
            let degree = degree.ok_or_else(|| DslError::MissingField {
                context: context.to_string(),
                field: "degree".to_string(),
            })?;
            if degree < 2 {
                return Err(DslError::InvalidField {
                    context: context.to_string(),
                    field: "degree".to_string(),
                    detail: "must be at least 2 (degree-0/1 graphs are never connected)"
                        .to_string(),
                });
            }
            Ok(Family::RandomRegular { degree })
        }
        "power-law" => {
            reject_param("degree", degree.is_some())?;
            reject_param("offsets", offsets.is_some())?;
            let attach = attach.ok_or_else(|| DslError::MissingField {
                context: context.to_string(),
                field: "attach".to_string(),
            })?;
            if attach == 0 {
                return Err(DslError::InvalidField {
                    context: context.to_string(),
                    field: "attach".to_string(),
                    detail: "must be at least 1".to_string(),
                });
            }
            Ok(Family::PowerLaw { attach })
        }
        "circulant" => {
            reject_param("degree", degree.is_some())?;
            reject_param("attach", attach.is_some())?;
            let offsets = offsets.ok_or_else(|| DslError::MissingField {
                context: context.to_string(),
                field: "offsets".to_string(),
            })?;
            if offsets.is_empty() || offsets.contains(&0) {
                return Err(DslError::InvalidField {
                    context: context.to_string(),
                    field: "offsets".to_string(),
                    detail: "must be a non-empty array of nonzero offsets".to_string(),
                });
            }
            // gcd(offsets) == 1 guarantees C_n(offsets) is connected for
            // *every* ladder size, so connectivity is checkable here rather
            // than cell by cell.
            let gcd = offsets.iter().copied().fold(0usize, gcd);
            if gcd != 1 {
                return Err(DslError::InvalidField {
                    context: context.to_string(),
                    field: "offsets".to_string(),
                    detail: format!("gcd is {gcd}; offsets with gcd 1 keep every size connected"),
                });
            }
            Ok(Family::Circulant { offsets })
        }
        other => Err(DslError::UnknownFamily {
            family: other.to_string(),
        }),
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn parse_workload(json: &Json, index: usize) -> Result<Workload, DslError> {
    let outer_context = format!("workload {index}");
    let fields = expect_obj(json, &outer_context)?;
    let kind = fields
        .iter()
        .find(|(key, _)| key == "kind")
        .map(|(_, value)| expect_str(value, &outer_context, "kind"))
        .transpose()?
        .ok_or_else(|| DslError::MissingField {
            context: outer_context.clone(),
            field: "kind".to_string(),
        })?;
    let context = format!("workload {index} ({kind})");

    // Collect the stanza's fields, rejecting any a stanza of this kind does
    // not define.
    let mut radius = None;
    let mut step = None;
    let mut max_roots = None;
    let mut family = None;
    let mut ladder = None;
    let mut ids = None;
    let mut decider = None;
    let allowed: &[&str] = match kind {
        "section2-trees" => &["kind", "max-roots", "radius"],
        "section2-promise" | "path-coverage" | "grid-profile" | "promise-views" => {
            &["kind", "radius"]
        }
        "paths" => &["kind", "radius", "step"],
        "layered-tree-views" => &["kind", "radius", "max-roots"],
        "sweep" => &["kind", "family", "ladder", "radius", "ids", "decider"],
        "fractional-coloring" => &["kind", "ladder"],
        other => {
            return Err(DslError::UnknownWorkload {
                kind: other.to_string(),
            })
        }
    };
    for (key, value) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(DslError::UnknownField {
                context: context.clone(),
                field: key.to_string(),
            });
        }
        match key.as_str() {
            "kind" => {}
            "radius" => radius = Some(expect_radius(value, &context)?),
            "step" => {
                let parsed = expect_usize(value, &context, "step")?;
                if parsed == 0 {
                    return Err(DslError::InvalidField {
                        context: context.clone(),
                        field: "step".to_string(),
                        detail: "must be at least 1".to_string(),
                    });
                }
                step = Some(parsed);
            }
            "max-roots" => {
                let parsed = expect_usize(value, &context, "max-roots")?;
                if parsed == 0 {
                    return Err(DslError::InvalidField {
                        context: context.clone(),
                        field: "max-roots".to_string(),
                        detail: "must be at least 1".to_string(),
                    });
                }
                max_roots = Some(parsed);
            }
            "family" => family = Some(parse_family(value, &context)?),
            "ladder" => ladder = Some(parse_ladder(value, &context)?),
            "ids" => ids = Some(IdRegime::parse(expect_str(value, &context, "ids")?)?),
            "decider" => decider = Some(Decider::parse(expect_str(value, &context, "decider")?)?),
            _ => unreachable!("allowed fields are matched exhaustively"),
        }
    }

    let require_ladder = |ladder: Option<Ladder>| {
        ladder.ok_or_else(|| DslError::MissingField {
            context: context.clone(),
            field: "ladder".to_string(),
        })
    };
    Ok(match kind {
        "section2-trees" => Workload::Section2Trees {
            max_roots: max_roots.unwrap_or(scenarios::TREE_MAX_ROOTS),
            radius: radius.unwrap_or(1),
        },
        "section2-promise" => Workload::Section2Promise {
            radius: radius.unwrap_or(2),
        },
        "paths" => Workload::Paths {
            radius: radius.unwrap_or(3),
            step: step.unwrap_or(scenarios::PATH_STEP),
        },
        "path-coverage" => Workload::PathCoverage {
            radius: radius.unwrap_or(3),
        },
        "grid-profile" => Workload::GridProfile {
            radius: radius.unwrap_or(3),
        },
        "layered-tree-views" => Workload::LayeredTreeViews {
            radius: radius.unwrap_or(3),
            max_roots: max_roots.unwrap_or(scenarios::R3_TREE_MAX_ROOTS),
        },
        "promise-views" => Workload::PromiseViews {
            radius: radius.unwrap_or(3),
        },
        "sweep" => Workload::Sweep {
            family: family.ok_or_else(|| DslError::MissingField {
                context: context.clone(),
                field: "family".to_string(),
            })?,
            ladder: require_ladder(ladder)?,
            radius: radius.unwrap_or(1),
            ids: ids.unwrap_or(IdRegime::Consecutive),
            decider: decider.unwrap_or(Decider::DegreeProfile),
        },
        "fractional-coloring" => {
            let ladder = require_ladder(ladder)?;
            // k indexes odd cycles C_{2k+1} with (2k+1)-colour bitmask
            // labels; a u64 caps k at 31.
            if ladder.to > 31 {
                return Err(DslError::LadderBounds {
                    detail: format!(
                        "fractional-coloring k reaches {} but colour sets are u64 bitmasks (k <= 31)",
                        ladder.to
                    ),
                });
            }
            Workload::FractionalColoring { ladder }
        }
        _ => unreachable!("unknown kinds rejected above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{Section2Sweep, Section2SweepR3};

    /// The committed re-expressions, compiled in so plan-shape equivalence
    /// is pinned at unit level (execution byte-identity lives in the
    /// ld-tests differential suite and CI).
    const SECTION2_DOC: &str = include_str!("../../../scenarios/section2-sweep.json");
    const SECTION2_R3_DOC: &str = include_str!("../../../scenarios/section2-sweep-r3.json");
    const NEW_FAMILIES_DOC: &str = include_str!("../../../scenarios/new-families.json");

    fn assert_same_plan_shape(doc: &ScenarioDoc, builtin: &dyn Scenario, config: &SweepConfig) {
        let dsl_plan = doc.plan(config).unwrap();
        let builtin_plan = builtin.plan(config).unwrap();
        assert_eq!(dsl_plan.cells.len(), builtin_plan.cells.len());
        assert_eq!(dsl_plan.caches.len(), builtin_plan.caches.len());
        for (a, b) in dsl_plan.cells.iter().zip(&builtin_plan.cells) {
            assert_eq!(a.spec.id, b.spec.id);
            assert_eq!(a.spec.params, b.spec.params);
        }
    }

    #[test]
    fn committed_section2_doc_matches_the_builtin_plan() {
        let doc = ScenarioDoc::from_text(SECTION2_DOC).unwrap();
        assert_eq!(doc.name(), "section2-sweep");
        for max_n in [24, 128] {
            let config = SweepConfig {
                max_n,
                ..SweepConfig::default()
            };
            assert_same_plan_shape(&doc, &Section2Sweep, &config);
        }
        // The radius override flows through the stanza defaults too.
        let config = SweepConfig {
            radius: Some(2),
            ..SweepConfig::default()
        };
        assert_same_plan_shape(&doc, &Section2Sweep, &config);
    }

    #[test]
    fn committed_r3_doc_matches_the_builtin_plan() {
        let doc = ScenarioDoc::from_text(SECTION2_R3_DOC).unwrap();
        assert_eq!(doc.name(), "section2-sweep-r3");
        for max_n in [24, 48, 128] {
            let config = SweepConfig {
                max_n,
                node_budget: Some(2_000_000),
                ..SweepConfig::default()
            };
            assert_same_plan_shape(&doc, &Section2SweepR3, &config);
        }
    }

    #[test]
    fn committed_new_families_doc_plans_and_passes() {
        let doc = ScenarioDoc::from_text(NEW_FAMILIES_DOC).unwrap();
        let config = SweepConfig {
            max_n: 40,
            ..SweepConfig::default()
        };
        let report = crate::executor::execute(&doc, &config).unwrap();
        assert_eq!(report.panicked(), 0);
        assert_eq!(
            report.failed(),
            0,
            "failing cells: {:?}",
            report
                .cells
                .iter()
                .filter(|c| !c.passed())
                .map(|c| c.spec.id.clone())
                .collect::<Vec<_>>()
        );
        for family in [
            "dsl/random-regular/",
            "dsl/power-law/",
            "dsl/circulant/",
            "fractional/",
        ] {
            assert!(
                report.cells.iter().any(|c| c.spec.id.starts_with(family)),
                "no {family} cells planned"
            );
        }
    }

    #[test]
    fn canonical_render_is_a_parse_fixed_point() {
        for text in [SECTION2_DOC, SECTION2_R3_DOC, NEW_FAMILIES_DOC] {
            let doc = ScenarioDoc::from_text(text).unwrap();
            let rendered = doc.to_json().render();
            let reparsed = ScenarioDoc::from_text(&rendered).unwrap();
            assert_eq!(doc, reparsed);
            assert_eq!(rendered, reparsed.to_json().render());
        }
    }

    #[test]
    fn typed_errors_cover_the_defect_catalogue() {
        let base = |workloads: &str| {
            format!(
                r#"{{"schema": "ld-runner/scenario/v1", "name": "t", "workloads": {workloads}}}"#
            )
        };
        let cases: Vec<(DslError, String)> = vec![
            (
                DslError::Parse {
                    detail: String::new(),
                },
                "not json".to_string(),
            ),
            (
                DslError::Schema {
                    found: String::new(),
                },
                r#"{"schema": "nope/v9", "name": "t", "workloads": [{"kind": "paths"}]}"#
                    .to_string(),
            ),
            (
                DslError::Schema {
                    found: String::new(),
                },
                r#"{"name": "t", "workloads": [{"kind": "paths"}]}"#.to_string(),
            ),
            (
                DslError::MissingField {
                    context: String::new(),
                    field: String::new(),
                },
                r#"{"schema": "ld-runner/scenario/v1", "workloads": [{"kind": "paths"}]}"#
                    .to_string(),
            ),
            (
                DslError::UnknownField {
                    context: String::new(),
                    field: String::new(),
                },
                r#"{"schema": "ld-runner/scenario/v1", "name": "t", "surprise": 1, "workloads": [{"kind": "paths"}]}"#
                    .to_string(),
            ),
            (DslError::EmptyWorkloads, base("[]")),
            (
                DslError::UnknownWorkload { kind: String::new() },
                base(r#"[{"kind": "mystery"}]"#),
            ),
            (
                DslError::UnknownField {
                    context: String::new(),
                    field: String::new(),
                },
                base(r#"[{"kind": "paths", "surprise": 1}]"#),
            ),
            (
                DslError::RadiusTooLarge { radius: 0 },
                base(r#"[{"kind": "paths", "radius": 4}]"#),
            ),
            (
                DslError::UnknownFamily { family: String::new() },
                base(r#"[{"kind": "sweep", "family": "klein-bottle", "ladder": {"from": 4, "to": 8}}]"#),
            ),
            (
                DslError::UnknownDecider { decider: String::new() },
                base(
                    r#"[{"kind": "sweep", "family": "path", "ladder": {"from": 4, "to": 8}, "decider": "oracle"}]"#,
                ),
            ),
            (
                DslError::UnknownIdRegime { regime: String::new() },
                base(
                    r#"[{"kind": "sweep", "family": "path", "ladder": {"from": 4, "to": 8}, "ids": "sorted"}]"#,
                ),
            ),
            (
                DslError::LadderBounds { detail: String::new() },
                base(r#"[{"kind": "sweep", "family": "path", "ladder": {"from": 9, "to": 8}}]"#),
            ),
            (
                DslError::LadderBounds { detail: String::new() },
                base(r#"[{"kind": "fractional-coloring", "ladder": {"from": 1, "to": 40}}]"#),
            ),
            (
                DslError::InvalidField {
                    context: String::new(),
                    field: String::new(),
                    detail: String::new(),
                },
                base(r#"[{"kind": "sweep", "family": {"kind": "circulant", "offsets": [2, 4]}, "ladder": {"from": 6, "to": 12}}]"#),
            ),
            (
                DslError::MissingField {
                    context: String::new(),
                    field: String::new(),
                },
                base(r#"[{"kind": "sweep", "family": {"kind": "random-regular"}, "ladder": {"from": 6, "to": 12}}]"#),
            ),
        ];
        for (expected, text) in cases {
            let err = ScenarioDoc::from_text(&text).unwrap_err();
            assert_eq!(
                std::mem::discriminant(&err),
                std::mem::discriminant(&expected),
                "input {text:?} produced {err:?}"
            );
            assert!(err.exit_code() >= 64);
            assert!(!err.token().is_empty());
        }
    }

    #[test]
    fn unreadable_file_error_names_the_path() {
        let err = ScenarioDoc::load_file(Path::new("/no/such/scenario.json")).unwrap_err();
        assert_eq!(err.token(), "unreadable-scenario-file");
        assert_eq!(err.exit_code(), 64);
        assert!(err.to_string().contains("/no/such/scenario.json"));
    }

    #[test]
    fn error_tokens_and_exit_codes_are_stable() {
        let variants = [
            DslError::Unreadable {
                path: String::new(),
                detail: String::new(),
            },
            DslError::Parse {
                detail: String::new(),
            },
            DslError::Schema {
                found: String::new(),
            },
            DslError::MissingField {
                context: String::new(),
                field: String::new(),
            },
            DslError::InvalidField {
                context: String::new(),
                field: String::new(),
                detail: String::new(),
            },
            DslError::UnknownField {
                context: String::new(),
                field: String::new(),
            },
            DslError::UnknownWorkload {
                kind: String::new(),
            },
            DslError::UnknownFamily {
                family: String::new(),
            },
            DslError::UnknownDecider {
                decider: String::new(),
            },
            DslError::UnknownIdRegime {
                regime: String::new(),
            },
            DslError::LadderBounds {
                detail: String::new(),
            },
            DslError::RadiusTooLarge { radius: 4 },
            DslError::EmptyWorkloads,
        ];
        let mut tokens: Vec<&str> = variants.iter().map(DslError::token).collect();
        for variant in &variants {
            let code = variant.exit_code();
            assert!(
                code == 64 || code == 66 || code == 68,
                "{variant:?} -> {code}"
            );
        }
        assert_eq!(
            DslError::RadiusTooLarge { radius: 4 }.exit_code(),
            crate::scenario::ConfigError::RadiusTooLarge { radius: 4 }.exit_code(),
            "the radius envelope maps to one exit code however it is hit"
        );
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), variants.len(), "tokens must be distinct");
    }

    #[test]
    fn budgets_compose_with_flag_overrides() {
        let text = r#"{
            "schema": "ld-runner/scenario/v1",
            "name": "budgeted",
            "node-budget": 64,
            "workloads": [{"kind": "paths"}]
        }"#;
        let doc = ScenarioDoc::from_text(text).unwrap();
        let config = SweepConfig {
            max_n: 48,
            ..SweepConfig::default()
        };
        // The document budget exhausts radius-3 path cells.
        let report = crate::executor::execute(&doc, &config).unwrap();
        assert!(report.exhausted() > 0);
        // An explicit flag wins over the document default.
        let generous = SweepConfig {
            node_budget: Some(u64::MAX),
            ..config
        };
        let report = crate::executor::execute(&doc, &generous).unwrap();
        assert_eq!(report.exhausted(), 0);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut text = String::new();
        for _ in 0..4_000 {
            text.push('[');
        }
        let err = ScenarioDoc::from_text(&text).unwrap_err();
        assert_eq!(err.token(), "scenario-parse");
    }
}
