//! # ld-runner — experiment orchestration for the local-decision workspace
//!
//! The paper's experiments (and the GKS-game line of follow-up work) live
//! and die by parameter sweeps: family × size × radius × identifier regime ×
//! algorithm, thousands of cells at a time.  This crate turns the hand-rolled
//! example binaries into declarative, parallel, machine-readable sweeps:
//!
//! * **Scenario specs** ([`scenario`]) — a [`Scenario`] expands a
//!   [`SweepConfig`] into a [`Plan`]: one closure per fully determined
//!   parameter cell.  Built-ins in [`scenarios`] cover the Section 2
//!   layered trees, the Section 3 execution tables, pyramids, the
//!   randomised decider, and the summary table.
//! * **A parallel executor** ([`executor`]) — a scoped thread pool over an
//!   atomic work queue, with per-cell seeds derived from the cell *index*
//!   and panics isolated per cell, so `--threads 8` reports are byte-equal
//!   to `--threads 1` reports.
//! * **A shared canonical-view cache** (`ld_local::cache`, threaded through
//!   every oblivious decision and view enumeration the cells perform) — the
//!   hot path of every indistinguishability harness, computed once per
//!   structural class per sweep.
//! * **Work budgets** — the Section 2 scenarios run their view-enumerating
//!   cells under the sweep's [`SweepConfig::enumeration_budget`] (node/view
//!   caps); exhaustion is a deterministic, explicitly reported *outcome*
//!   ([`CellOutcome::budget`]), which is what lets the radius-3 scenario
//!   (`section2-sweep-r3`) sweep `--max-n 128` safely.  Scenarios without a
//!   budget knob ignore the caps, as `relationship-table` ignores `max_n`.
//! * **A streaming sharded pipeline** ([`stream`]) — the plan is
//!   partitioned into deterministic shards; workers feed a bounded channel
//!   to a single writer that appends schema-`v3` cells in index order, so
//!   peak memory is O(shard window), not O(plan), and the streamed file is
//!   byte-identical to the in-memory rendering.  Every flushed shard is
//!   recorded in a `.ckpt` sidecar: a killed sweep resumes from its last
//!   shard (`ldx resume`) and byte-matches an uninterrupted run.  The
//!   large-N scenarios (`section2-sweep-xl` at 512+ nodes,
//!   `randomized-sweep-xl`) ride on this headroom, with scenario-default
//!   budgets (`EnumerationBudget::scaled`) capping every cell.
//! * **Reporters** ([`report`]) — JSON and CSV run records (schema
//!   `ld-runner/report/v3`: header, append-only `cells` stream, trailing
//!   summary) plus the `BENCH_runner.json` perf snapshot, and a
//!   version-compatible reader ([`summary`]) that parses v3 and the legacy
//!   v2/v1 documents alike — which is what `ldx diff` compares any two
//!   persisted reports with.
//!
//! The `ldx` binary (this crate's `src/bin/ldx.rs`) lists, runs, resumes
//! and diffs sweeps by name:
//!
//! ```text
//! ldx list
//! ldx run section2-sweep --max-n 128 --threads 8
//! ldx run section2-sweep-xl --max-n 512 --deterministic
//! ldx resume ldx-section2-sweep-xl.json
//! ldx diff ldx-section2-sweep-xl.json archived-run.json
//! ```
//!
//! # Example
//!
//! ```
//! use ld_runner::{executor, scenarios, SweepConfig};
//!
//! let config = SweepConfig { max_n: 16, threads: 2, seed: 1, ..SweepConfig::default() };
//! let report = executor::execute(&scenarios::PyramidSweep, &config).unwrap();
//! assert_eq!(report.panicked(), 0);
//! let json = report.to_json();
//! assert!(json.starts_with("{"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod dsl;
pub mod executor;
pub mod json;
pub mod report;
pub mod scenario;
pub mod scenarios;
pub mod spool_io;
pub mod stream;
pub mod summary;

pub use cell::{CellOutcome, CellResult, CellSpec};
pub use dsl::{DslError, ScenarioDoc};
pub use report::RunReport;
pub use scenario::{with_cache_pool, ConfigError, Plan, PlannedCell, Scenario, SweepConfig};
pub use spool_io::{FaultIo, RealIo, SpoolFile, SpoolIo};
pub use stream::{StreamOptions, StreamSummary};
pub use summary::{CellSummary, ReportSummary};
