//! # ld-runner — experiment orchestration for the local-decision workspace
//!
//! The paper's experiments (and the GKS-game line of follow-up work) live
//! and die by parameter sweeps: family × size × radius × identifier regime ×
//! algorithm, thousands of cells at a time.  This crate turns the hand-rolled
//! example binaries into declarative, parallel, machine-readable sweeps:
//!
//! * **Scenario specs** ([`scenario`]) — a [`Scenario`] expands a
//!   [`SweepConfig`] into a [`Plan`]: one closure per fully determined
//!   parameter cell.  Built-ins in [`scenarios`] cover the Section 2
//!   layered trees, the Section 3 execution tables, pyramids, the
//!   randomised decider, and the summary table.
//! * **A parallel executor** ([`executor`]) — a scoped thread pool over an
//!   atomic work queue, with per-cell seeds derived from the cell *index*
//!   and panics isolated per cell, so `--threads 8` reports are byte-equal
//!   to `--threads 1` reports.
//! * **A shared canonical-view cache** (`ld_local::cache`, threaded through
//!   every oblivious decision and view enumeration the cells perform) — the
//!   hot path of every indistinguishability harness, computed once per
//!   structural class per sweep.
//! * **Reporters** ([`report`]) — JSON and CSV run records plus the
//!   `BENCH_runner.json` perf snapshot.
//!
//! The `ldx` binary (this crate's `src/bin/ldx.rs`) lists and runs
//! scenarios by name:
//!
//! ```text
//! ldx list
//! ldx run section2-sweep --max-n 64 --threads 8
//! ```
//!
//! # Example
//!
//! ```
//! use ld_runner::{executor, scenarios, SweepConfig};
//!
//! let config = SweepConfig { max_n: 16, threads: 2, seed: 1 };
//! let report = executor::execute(&scenarios::PyramidSweep, &config).unwrap();
//! assert_eq!(report.panicked(), 0);
//! let json = report.to_json();
//! assert!(json.starts_with("{"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod executor;
pub mod json;
pub mod report;
pub mod scenario;
pub mod scenarios;

pub use cell::{CellOutcome, CellResult, CellSpec};
pub use report::RunReport;
pub use scenario::{Plan, PlannedCell, Scenario, SweepConfig};
