//! Scenario specs: declarative descriptions of whole experiment sweeps.
//!
//! A [`Scenario`] turns a [`SweepConfig`] into a [`Plan`]: a list of cells,
//! each paired with a closure that executes it, plus handles to the shared
//! canonical-view caches the cells consult.  The executor (see
//! [`crate::executor`]) is scenario-agnostic; all domain knowledge lives in
//! the plans.

use crate::cell::{CellOutcome, CellSpec};
use ld_local::cache::{CachePool, CacheStats, ViewCache};
use ld_local::enumeration::EnumerationBudget;
use std::cell::RefCell;
use std::hash::Hash;
use std::sync::Arc;

thread_local! {
    /// The cache pool consulted by [`Plan::share_cache`] on this thread
    /// (installed by [`with_cache_pool`], absent by default).
    static CACHE_POOL: RefCell<Option<Arc<CachePool>>> = const { RefCell::new(None) };
}

/// Restores the previously installed pool when [`with_cache_pool`] exits,
/// including by panic — a poisoned job must not leak its pool into
/// unrelated plans built later on the same worker thread.
struct PoolGuard(Option<Arc<CachePool>>);

impl Drop for PoolGuard {
    fn drop(&mut self) {
        CACHE_POOL.with(|slot| *slot.borrow_mut() = self.0.take());
    }
}

/// Runs `f` with `pool` installed as the canonical-view cache source for
/// every [`Plan::share_cache`] call on this thread.
///
/// One-shot CLI sweeps never call this: each plan builds private caches,
/// exactly as before.  A long-running service wraps each job's planning and
/// execution in it so concurrent and subsequent jobs share one warmed cache
/// per label family.  Sharing never changes report bytes (pool caches are
/// exact-keyed — see `ld_local::cache`); it *does* mean a plan's merged
/// [`CacheStats`] include activity from every job drawing on the pool, so
/// per-run hit-rate deltas become pool-wide figures.
pub fn with_cache_pool<R>(pool: &Arc<CachePool>, f: impl FnOnce() -> R) -> R {
    let previous = CACHE_POOL.with(|slot| slot.borrow_mut().replace(Arc::clone(pool)));
    let _guard = PoolGuard(previous);
    f()
}

/// The largest view radius any sweep may request.  Radius-4 balls of the
/// swept families are already large enough that enumeration cost is
/// dominated by canonicalisation of near-whole-graph views; nothing in the
/// paper needs them, and several scenario builders assume small radii, so
/// an oversized `--radius` is a configuration error, not a sweep.
pub const MAX_RADIUS: usize = 3;

/// A structurally invalid [`SweepConfig`]: the typed planning-time errors
/// that used to surface as silent empty plans or scenario-builder panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_n == 0`: no scenario can plan a cell with a zero size budget.
    ZeroMaxN,
    /// `radius > MAX_RADIUS`: the requested view radius is outside the
    /// supported envelope.
    RadiusTooLarge {
        /// The rejected radius.
        radius: usize,
    },
    /// `shard_size == 0`: the streaming pipeline cannot partition a plan
    /// into empty shards.
    ZeroShardSize,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroMaxN => write!(f, "max_n must be at least 1 (got 0)"),
            ConfigError::RadiusTooLarge { radius } => write!(
                f,
                "radius {radius} exceeds the supported maximum of {MAX_RADIUS}"
            ),
            ConfigError::ZeroShardSize => write!(f, "shard_size must be at least 1 (got 0)"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    /// A stable, machine-readable identifier for the variant.  `ldx` prints
    /// it alongside the message, and `ld-serve` returns it as the `error`
    /// field of HTTP 400 bodies, so clients can dispatch on the token
    /// without parsing prose.
    pub fn token(&self) -> &'static str {
        match self {
            ConfigError::ZeroMaxN => "zero-max-n",
            ConfigError::RadiusTooLarge { .. } => "radius-too-large",
            ConfigError::ZeroShardSize => "zero-shard-size",
        }
    }

    /// The process exit code `ldx run` / `ldx resume` terminate with for
    /// this variant.  The range starts past 64 (`EX_USAGE`, which `ldx`
    /// keeps for argument-parsing failures) so each configuration defect is
    /// distinguishable in scripts; `ld-serve` embeds the same code in 400
    /// bodies so a client can exit with it verbatim.
    pub fn exit_code(&self) -> u8 {
        match self {
            ConfigError::ZeroMaxN => 65,
            ConfigError::RadiusTooLarge { .. } => 66,
            ConfigError::ZeroShardSize => 67,
        }
    }
}

/// Configuration shared by every sweep: the instance-size budget, the
/// parallelism level, the master seed from which all per-cell seeds are
/// derived, and the per-cell work budgets that keep radius-3 cells bounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// The scenario-interpreted size budget.  Sweeps over instance families
    /// plan no cell whose instance would exceed this many nodes; scenarios
    /// with other natural scale knobs (zoo breadth, machine speed) scale
    /// those instead, and the fixed four-cell `relationship-table` ignores
    /// it.
    pub max_n: usize,
    /// Worker threads (`1` = the sequential reference path).
    pub threads: usize,
    /// Master seed; per-cell seeds are a pure function of it and the cell
    /// index.
    pub seed: u64,
    /// Optional override of the scenario's natural view radius.  Scenarios
    /// that sweep views interpret it through [`SweepConfig::radius_or`];
    /// scenarios with no radius knob ignore it.
    pub radius: Option<usize>,
    /// Per-cell cap on ball-node visits during view enumeration (`None` =
    /// unlimited).  Exhaustion is a deterministic, explicitly reported cell
    /// outcome, not a failure — see `crates/runner/DESIGN.md`.
    pub node_budget: Option<u64>,
    /// Per-cell cap on materialised views (`None` = unlimited).
    pub view_budget: Option<u64>,
    /// Cells per shard for the streaming pipeline (see [`crate::stream`]).
    /// Shards are the unit of work claiming, result buffering and
    /// checkpointing; the value never affects *cell* records — only how
    /// much of the sweep is in flight at once.  It is recorded in the
    /// report's `config` object (like `seed`), so byte-comparing two
    /// deterministic reports requires the same shard size, as every CI
    /// diff and the resume path use.
    pub shard_size: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            max_n: 128,
            threads: 1,
            seed: 0x1d_2013,
            radius: None,
            node_budget: None,
            view_budget: None,
            shard_size: 16,
        }
    }
}

impl SweepConfig {
    /// Checks the configuration for structural validity before any scenario
    /// sees it.  Every sweep entry point ([`crate::executor::execute`], the
    /// streaming pipeline, `ldx`) validates first, so scenario builders can
    /// assume `max_n >= 1`, `radius <= MAX_RADIUS` and `shard_size >= 1`.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ConfigError`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_n == 0 {
            return Err(ConfigError::ZeroMaxN);
        }
        if let Some(radius) = self.radius {
            if radius > MAX_RADIUS {
                return Err(ConfigError::RadiusTooLarge { radius });
            }
        }
        if self.shard_size == 0 {
            return Err(ConfigError::ZeroShardSize);
        }
        Ok(())
    }

    /// The sweep radius: the explicit `--radius` override when given, the
    /// scenario's natural default otherwise.
    pub fn radius_or(&self, default: usize) -> usize {
        self.radius.unwrap_or(default)
    }

    /// The per-cell enumeration budget this configuration implies
    /// (unlimited in every dimension left `None`).
    pub fn enumeration_budget(&self) -> EnumerationBudget {
        EnumerationBudget {
            max_nodes: self.node_budget.unwrap_or(u64::MAX),
            max_views: self.view_budget.unwrap_or(u64::MAX),
        }
    }

    /// The per-cell budget with a scenario-supplied default: an explicit
    /// `--node-budget` / `--view-budget` always wins, but when neither was
    /// set, `default` caps the cell instead of "unlimited".  The XL
    /// scenarios pass [`EnumerationBudget::scaled`] here so large-N cells
    /// are never uncapped.
    pub fn enumeration_budget_or(&self, default: EnumerationBudget) -> EnumerationBudget {
        if self.node_budget.is_none() && self.view_budget.is_none() {
            default
        } else {
            self.enumeration_budget()
        }
    }
}

/// The executable form of one cell: its spec plus the closure that runs it.
pub struct PlannedCell {
    /// The declarative spec (everything reports record about the cell's
    /// parameters).
    pub spec: CellSpec,
    /// Executes the cell.  Receives the per-cell seed; must be deterministic
    /// in (spec, seed).  May panic — the executor isolates panics.
    pub run: Box<dyn Fn(u64) -> CellOutcome + Send + Sync>,
}

impl PlannedCell {
    /// Pairs a spec with its executor closure.
    pub fn new(spec: CellSpec, run: impl Fn(u64) -> CellOutcome + Send + Sync + 'static) -> Self {
        PlannedCell {
            spec,
            run: Box::new(run),
        }
    }
}

/// Anything that can report canonical-view-cache counters.  Lets a plan
/// expose caches of different label types uniformly.
pub trait CacheStatsSource: Send + Sync {
    /// Current counters.
    fn stats(&self) -> CacheStats;
}

impl<L: Send + Sync> CacheStatsSource for ViewCache<L> {
    fn stats(&self) -> CacheStats {
        ViewCache::stats(self)
    }
}

/// A fully expanded sweep, ready for the executor.
pub struct Plan {
    /// The cells, in planning order (which is also report order).
    pub cells: Vec<PlannedCell>,
    /// The shared caches the cells consult, for hit-rate reporting.  One
    /// entry per label family the scenario touches.
    pub caches: Vec<Arc<dyn CacheStatsSource>>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan {
            cells: Vec::new(),
            caches: Vec::new(),
        }
    }

    /// Registers a shared cache for stats reporting and returns it for cell
    /// closures to capture.
    ///
    /// When a [`with_cache_pool`] scope is active on the calling thread the
    /// cache is drawn from the pool (one shared instance per label family,
    /// warm across jobs); otherwise the plan gets a private, empty cache.
    pub fn share_cache<L>(&mut self) -> Arc<ViewCache<L>>
    where
        L: Clone + Eq + Hash + Send + Sync + 'static,
    {
        let cache = CACHE_POOL.with(|slot| {
            slot.borrow()
                .as_ref()
                .map_or_else(|| Arc::new(ViewCache::new()), |pool| pool.view_cache::<L>())
        });
        self.caches.push(cache.clone());
        cache
    }

    /// Adds a cell.
    pub fn push(
        &mut self,
        spec: CellSpec,
        run: impl Fn(u64) -> CellOutcome + Send + Sync + 'static,
    ) {
        self.cells.push(PlannedCell::new(spec, run));
    }

    /// The merged counters of every registered cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.caches
            .iter()
            .fold(CacheStats::default(), |acc, c| acc.merged(&c.stats()))
    }
}

impl Default for Plan {
    fn default() -> Self {
        Self::new()
    }
}

/// A named, declarative experiment sweep.
///
/// Implementations expand a [`SweepConfig`] into a [`Plan`]; they hold no
/// per-run state themselves, so one scenario value can plan any number of
/// sweeps.
pub trait Scenario: Sync {
    /// The stable name `ldx` addresses the scenario by (kebab-case).
    ///
    /// Borrowed from the scenario value (not `'static`): built-in scenarios
    /// return literals, while file-defined scenarios (see [`crate::dsl`])
    /// return names owned by the parsed document.
    fn name(&self) -> &str;

    /// One-line human description for `ldx list`.
    fn description(&self) -> &str;

    /// Expands the scenario into concrete cells under `config`.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration cannot produce a valid plan
    /// (construction failures, impossible parameter ranges).
    fn plan(&self, config: &SweepConfig) -> Result<Plan, String>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellOutcome;

    #[test]
    fn plan_accumulates_cells_and_caches() {
        let mut plan = Plan::new();
        let cache = plan.share_cache::<u8>();
        plan.push(CellSpec::new("a", []), move |_seed| {
            let _ = cache.stats();
            CellOutcome::new("ok", true)
        });
        assert_eq!(plan.cells.len(), 1);
        assert_eq!(plan.caches.len(), 1);
        assert_eq!(plan.cache_stats(), CacheStats::default());
        let outcome = (plan.cells[0].run)(7);
        assert!(outcome.pass);
    }

    #[test]
    fn default_config_is_the_documented_one() {
        let config = SweepConfig::default();
        assert_eq!(config.max_n, 128);
        assert_eq!(config.threads, 1);
        assert_eq!(config.radius, None);
        assert_eq!(config.node_budget, None);
        assert_eq!(config.view_budget, None);
        assert_eq!(config.shard_size, 16);
    }

    #[test]
    fn validation_rejects_degenerate_configs_with_typed_errors() {
        assert_eq!(SweepConfig::default().validate(), Ok(()));
        let zero_n = SweepConfig {
            max_n: 0,
            ..SweepConfig::default()
        };
        assert_eq!(zero_n.validate(), Err(ConfigError::ZeroMaxN));
        let wide = SweepConfig {
            radius: Some(4),
            ..SweepConfig::default()
        };
        assert_eq!(
            wide.validate(),
            Err(ConfigError::RadiusTooLarge { radius: 4 })
        );
        assert!(wide
            .validate()
            .unwrap_err()
            .to_string()
            .contains("radius 4"));
        let in_range = SweepConfig {
            radius: Some(MAX_RADIUS),
            ..SweepConfig::default()
        };
        assert_eq!(in_range.validate(), Ok(()));
        let no_shards = SweepConfig {
            shard_size: 0,
            ..SweepConfig::default()
        };
        assert_eq!(no_shards.validate(), Err(ConfigError::ZeroShardSize));
    }

    #[test]
    fn config_errors_map_to_distinct_exit_codes_and_tokens() {
        let variants = [
            ConfigError::ZeroMaxN,
            ConfigError::RadiusTooLarge { radius: 9 },
            ConfigError::ZeroShardSize,
        ];
        let codes: Vec<u8> = variants.iter().map(ConfigError::exit_code).collect();
        let tokens: Vec<&str> = variants.iter().map(ConfigError::token).collect();
        assert_eq!(codes, vec![65, 66, 67]);
        assert_eq!(
            tokens,
            vec!["zero-max-n", "radius-too-large", "zero-shard-size"]
        );
        for code in &codes {
            assert!(*code > 64, "codes stay clear of EX_USAGE and below");
        }
    }

    #[test]
    fn share_cache_draws_from_an_installed_pool() {
        use ld_local::cache::CachePool;

        // Without a pool: two plans get independent caches.
        let mut plan_a = Plan::new();
        let mut plan_b = Plan::new();
        let a = plan_a.share_cache::<u8>();
        let b = plan_b.share_cache::<u8>();
        assert!(!Arc::ptr_eq(&a, &b), "private caches must not be shared");

        // With a pool: every plan built in the scope shares one cache per
        // label family, and the scope restores cleanly.
        let pool = Arc::new(CachePool::new());
        let (a, b) = super::with_cache_pool(&pool, || {
            let mut plan_a = Plan::new();
            let mut plan_b = Plan::new();
            (plan_a.share_cache::<u8>(), plan_b.share_cache::<u8>())
        });
        assert!(Arc::ptr_eq(&a, &b), "pooled caches must be shared");
        assert!(Arc::ptr_eq(&a, &pool.view_cache::<u8>()));
        let outside = Plan::new().share_cache::<u8>();
        assert!(
            !Arc::ptr_eq(&outside, &a),
            "the pool must not leak past its scope"
        );

        // Nested scopes restore the *outer* pool, not an empty slot.
        let outer = Arc::new(CachePool::new());
        let inner = Arc::new(CachePool::new());
        super::with_cache_pool(&outer, || {
            super::with_cache_pool(&inner, || {
                let cache = Plan::new().share_cache::<u8>();
                assert!(Arc::ptr_eq(&cache, &inner.view_cache::<u8>()));
            });
            let cache = Plan::new().share_cache::<u8>();
            assert!(Arc::ptr_eq(&cache, &outer.view_cache::<u8>()));
        });
    }

    #[test]
    fn budget_and_radius_helpers() {
        use ld_local::enumeration::EnumerationBudget;
        let config = SweepConfig::default();
        assert_eq!(config.radius_or(3), 3);
        assert_eq!(config.enumeration_budget(), EnumerationBudget::UNLIMITED);
        let capped = SweepConfig {
            radius: Some(2),
            node_budget: Some(1_000),
            view_budget: Some(50),
            ..SweepConfig::default()
        };
        assert_eq!(capped.radius_or(3), 2);
        let budget = capped.enumeration_budget();
        assert_eq!(budget.max_nodes, 1_000);
        assert_eq!(budget.max_views, 50);
    }
}
