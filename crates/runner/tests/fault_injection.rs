//! Exhaustive crash-point sweep over the streaming pipeline's persisted
//! I/O.
//!
//! The harness runs one small deterministic sweep fault-free under an
//! observing [`FaultPlan`] to count every primitive report/checkpoint
//! operation, then re-runs the pipeline once per operation index with a
//! fault scripted there: a torn write followed by process death, and a
//! clean `ENOSPC`.  Every faulted run must fail with an error (never a
//! panic, never a silently-wrong report), and recovery with production
//! I/O — `stream::resume` when the checkpoint survived, a fresh run when
//! it did not — must reproduce the reference report byte for byte.
//! A third scenario injects a short read into the resume path itself.

use interleave::fault::{FaultKind, FaultPlan};
use ld_runner::stream::{self, Checkpoint, StreamOptions};
use ld_runner::{scenarios, FaultIo, RealIo, SweepConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ld-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn small_config() -> SweepConfig {
    SweepConfig {
        max_n: 20,
        threads: 1,
        shard_size: 4,
        ..SweepConfig::default()
    }
}

fn options() -> StreamOptions {
    StreamOptions {
        deterministic: true,
        max_shards: None,
        csv: None,
    }
}

/// Recovers a faulted run the way a restarted process would: resume from
/// the checkpoint when it parses, start over when it does not.
fn recover(out: &Path) {
    let scenario = scenarios::find("section2-sweep").expect("scenario");
    let resumable = std::fs::read_to_string(Checkpoint::path_for(out))
        .ok()
        .and_then(|text| Checkpoint::parse(&text).ok())
        .is_some();
    // A torn checkpoint tail can pass parsing yet fail prefix
    // verification; a restarted operator then starts over too.
    if resumable && stream::resume(out, None, None).is_ok() {
        return;
    }
    stream::run(scenario.as_ref(), &small_config(), out, &options()).expect("fresh recovery run");
}

#[test]
fn every_torn_write_crash_point_recovers_byte_identically() {
    let dir = test_dir("torn");
    let scenario = scenarios::find("section2-sweep").expect("scenario");
    let config = small_config();
    let opts = options();

    let reference_path = dir.join("reference.json");
    stream::run(scenario.as_ref(), &config, &reference_path, &opts).expect("reference run");
    let reference = std::fs::read(&reference_path).expect("reference bytes");

    let observe = FaultIo::new(Arc::new(FaultPlan::observe()));
    let observed = dir.join("observe.json");
    stream::run_with_io(&observe, scenario.as_ref(), &config, &observed, &opts)
        .expect("observe run");
    let total_ops = observe.plan().ops();
    assert!(total_ops > 10, "expected a real op count, got {total_ops}");

    for op in 0..total_ops {
        let out = dir.join(format!("torn-{op}.json"));
        let io = FaultIo::new(Arc::new(FaultPlan::inject(op, FaultKind::TornWrite)));
        let result = stream::run_with_io(&io, scenario.as_ref(), &config, &out, &opts);
        assert!(
            result.is_err(),
            "torn write at op {op} must surface as an error"
        );
        assert!(io.plan().fired(), "fault at op {op} must fire");
        recover(&out);
        let recovered = std::fs::read(&out).expect("recovered bytes");
        assert_eq!(
            recovered, reference,
            "recovery after a torn write at op {op} must be byte-identical"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_enospc_point_propagates_cleanly_and_recovers() {
    let dir = test_dir("enospc");
    let scenario = scenarios::find("section2-sweep").expect("scenario");
    let config = small_config();
    let opts = options();

    let reference_path = dir.join("reference.json");
    stream::run(scenario.as_ref(), &config, &reference_path, &opts).expect("reference run");
    let reference = std::fs::read(&reference_path).expect("reference bytes");

    let observe = FaultIo::new(Arc::new(FaultPlan::observe()));
    let observed = dir.join("observe.json");
    stream::run_with_io(&observe, scenario.as_ref(), &config, &observed, &opts)
        .expect("observe run");
    let total_ops = observe.plan().ops();

    for op in 0..total_ops {
        let out = dir.join(format!("enospc-{op}.json"));
        let io = FaultIo::new(Arc::new(FaultPlan::inject(op, FaultKind::Enospc)));
        let result = stream::run_with_io(&io, scenario.as_ref(), &config, &out, &opts);
        let err = result.expect_err("ENOSPC must propagate, not be swallowed");
        assert!(
            err.contains("no space"),
            "op {op}: error must carry the ENOSPC cause, got: {err}"
        );
        assert!(!io.plan().crashed(), "ENOSPC must not crash the plan");
        recover(&out);
        let recovered = std::fs::read(&out).expect("recovered bytes");
        assert_eq!(
            recovered, reference,
            "recovery after ENOSPC at op {op} must be byte-identical"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_read_on_the_resume_path_is_rejected_then_recoverable() {
    let dir = test_dir("short");
    let scenario = scenarios::find("section2-sweep").expect("scenario");
    let config = small_config();
    let opts = options();

    let reference_path = dir.join("reference.json");
    stream::run(scenario.as_ref(), &config, &reference_path, &opts).expect("reference run");
    let reference = std::fs::read(&reference_path).expect("reference bytes");

    // Interrupt a run after one shard, then resume through a reader that
    // sees a truncated checkpoint: the resume must fail loudly (a torn
    // view must never be mistaken for a valid prefix), and a clean retry
    // must finish byte-identically.
    let out = dir.join("short.json");
    let partial = StreamOptions {
        deterministic: true,
        max_shards: Some(1),
        csv: None,
    };
    let summary = stream::run(scenario.as_ref(), &config, &out, &partial).expect("interrupted run");
    assert!(!summary.completed, "max_shards run must be incomplete");

    let io = FaultIo::new(Arc::new(FaultPlan::inject(0, FaultKind::ShortRead)));
    let result = stream::resume_with_io(&io, &out, None, None);
    assert!(
        result.is_err(),
        "a short checkpoint read must fail resume, got {result:?}"
    );

    stream::resume_with_io(&RealIo, &out, None, None).expect("clean resume");
    let recovered = std::fs::read(&out).expect("recovered bytes");
    assert_eq!(recovered, reference, "clean resume must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}
